"""Command-line interface: generate worlds, build indexes, run searches.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro world generate --entities 60 --reviews 15 --out world.json
    python -m repro world show --path world.json
    python -m repro index build --world world.json --out index.json
    python -m repro search --world world.json --index index.json \
        "delicious food" "nice staff"
    python -m repro datasets

All CLI paths use the oracle extractor (gold review annotations) so they run
in seconds; the neural pipeline lives in the examples and benchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_world_generate(args: argparse.Namespace) -> int:
    from repro.data import (
        CatalogConfig,
        FraudConfig,
        ReviewConfig,
        WorldConfig,
        build_world,
        inject_fraud,
        save_world,
    )

    config = WorldConfig(
        catalog=CatalogConfig(num_entities=args.entities, seed=args.seed),
        reviews=ReviewConfig(mean_reviews_per_entity=args.reviews, seed=args.seed),
    )
    world = build_world(config)
    if args.fraud:
        campaigns = inject_fraud(world, FraudConfig(seed=args.seed))
        print(f"injected {len(campaigns)} fraud campaigns")
    save_world(world, args.out)
    print(f"wrote {len(world.entities)} entities / {world.num_reviews} reviews to {args.out}")
    return 0


def _cmd_world_show(args: argparse.Namespace) -> int:
    from repro.data import load_world

    world = load_world(args.path)
    print(f"entities: {len(world.entities)}   reviews: {world.num_reviews}")
    stars = [e.stars for e in world.entities]
    print(f"stars: min={min(stars)} mean={np.mean(stars):.2f} max={max(stars)}")
    print("sample entities:")
    for entity in world.entities[: args.limit]:
        review_count = len(world.reviews.get(entity.entity_id, []))
        print(f"  {entity.entity_id}  {entity.name:<24} {entity.stars} stars  {review_count} reviews")
    if args.entity:
        for review in world.reviews.get(args.entity, [])[: args.limit]:
            print(f"  [{review.review_id}] {review.text}")
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.core import OracleExtractor, Saccs, SaccsConfig, SubjectiveTag, save_index
    from repro.data import load_world
    from repro.text import ConceptualSimilarity, restaurant_lexicon

    world = load_world(args.world)
    similarity = ConceptualSimilarity(restaurant_lexicon())
    config = SaccsConfig(theta_index=args.theta, theta_mode=args.theta_mode)
    review_filter = None
    if args.filter_fraud:
        from repro.core import FakeReviewFilter

        review_filter = FakeReviewFilter()
    saccs = Saccs(
        world.entities, world.reviews, OracleExtractor(), similarity, config,
        review_filter=review_filter,
    )
    tags = [SubjectiveTag.from_text(d.name) for d in world.dimensions]
    if args.tags:
        tags = [SubjectiveTag.from_text(t) for t in args.tags]
    saccs.build_index(tags)
    save_index(saccs.index, args.out)
    print(f"indexed {len(saccs.index)} tags over {len(world.entities)} entities -> {args.out}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.core import SubjectiveTag, load_index
    from repro.core.filtering import FilterConfig, filter_and_rank
    from repro.data import load_world
    from repro.text import ConceptualSimilarity, restaurant_lexicon

    world = load_world(args.world)
    similarity = ConceptualSimilarity(restaurant_lexicon())
    index = load_index(args.index, similarity)
    name_of = {e.entity_id: e.name for e in world.entities}
    tags = [SubjectiveTag.from_text(t) for t in args.tags]
    tag_sets = []
    for tag in tags:
        mapping = index.lookup(tag)
        if not mapping:
            mapping = index.lookup_similar(tag, theta_filter=args.theta)
            print(f"(tag {tag.text!r} not indexed; combined similar tags)")
        tag_sets.append(mapping)
    results = filter_and_rank(
        [e.entity_id for e in world.entities],
        tag_sets,
        FilterConfig(top_k=args.top_k),
    )
    print(f"query: {', '.join(t.text for t in tags)}")
    for rank, (entity_id, score) in enumerate(results, start=1):
        print(f"  {rank:2d}. {name_of.get(entity_id, entity_id):<26} {score:.3f}")
    return 0


def _build_serving_saccs(args: argparse.Namespace):
    """A built oracle-extractor facade from a snapshot or a generated world.

    Returns ``(saccs, snapshot_note)``: ``snapshot_note`` is
    ``(snapshot_sha256, load_seconds)`` when the index warm-started from
    ``--snapshot-dir``, else ``None`` (cold build — which also writes a
    fresh snapshot to the directory when one was requested).
    """
    import json
    import time
    from pathlib import Path

    from repro.core import OracleExtractor, Saccs, SaccsConfig, SubjectiveTag
    from repro.core.snapshot import (
        MANIFEST_NAME,
        SnapshotError,
        load_snapshot,
        save_snapshot,
    )
    from repro.data import WorldConfig, build_world, load_world
    from repro.text import ConceptualSimilarity, restaurant_lexicon

    if args.world:
        world = load_world(args.world)
    else:
        world = build_world(
            WorldConfig.small(
                seed=args.seed, num_entities=args.entities, mean_reviews=args.reviews
            )
        )
    similarity = ConceptualSimilarity(restaurant_lexicon())
    shards = getattr(args, "shards", 1)
    lookup_workers = getattr(args, "lookup_workers", 0)
    saccs = Saccs(
        world.entities,
        world.reviews,
        OracleExtractor(),
        similarity,
        SaccsConfig(
            encoder_precision=getattr(args, "encoder_precision", "float64"),
            index_shards=shards,
            index_lookup_workers=lookup_workers,
        ),
    )
    snapshot_dir = getattr(args, "snapshot_dir", None)
    if snapshot_dir:
        started = time.perf_counter()
        try:
            index = load_snapshot(snapshot_dir, similarity, lookup_workers=lookup_workers)
        except SnapshotError as exc:
            print(f"snapshot unusable ({exc}); cold-building the index")
        else:
            saccs.adopt_index(index)
            load_seconds = time.perf_counter() - started
            manifest = json.loads(
                (Path(snapshot_dir) / MANIFEST_NAME).read_text(encoding="utf-8")
            )
            print(
                f"warm-started {len(index)} index tags from {snapshot_dir} "
                f"in {load_seconds:.2f}s"
            )
            return saccs, (str(manifest.get("snapshot_sha256")), load_seconds)
    saccs.build_index([SubjectiveTag.from_text(d.name) for d in world.dimensions])
    if snapshot_dir:
        manifest = save_snapshot(saccs.index, snapshot_dir)
        print(
            f"wrote snapshot {manifest['snapshot_sha256'][:12]}… to {snapshot_dir}"
        )
    return saccs, None


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.obs import TraceStore, Tracer, default_slos, get_logger
    from repro.serve import SaccsHttpServer, SaccsRuntime, ServeConfig

    saccs, snapshot_note = _build_serving_saccs(args)
    config = ServeConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        workers=args.workers,
        cache_size=args.cache_size,
        session_ttl_seconds=args.session_ttl,
        collector_enabled=not args.no_collector,
        collector_interval_seconds=args.collector_interval,
        collector_retention=args.collector_retention,
    )
    tracer = None
    if not args.no_trace:
        tracer = Tracer(
            store=TraceStore(
                capacity=args.trace_capacity,
                slow_threshold_seconds=args.slow_ms / 1000.0,
            ),
            logger=get_logger("repro.serve"),
            sample_every=args.trace_sample,
        )
    slos = tuple(
        dataclasses.replace(spec, threshold_ms=args.slo_latency_ms)
        if spec.objective == "latency"
        else spec
        for spec in default_slos()
    )
    runtime = SaccsRuntime(saccs, config, tracer=tracer, slos=slos)
    if snapshot_note is not None:
        runtime.note_snapshot_load(*snapshot_note)
    server = SaccsHttpServer(runtime, host=args.host, port=args.port)
    print(
        f"serving {len(saccs.index)} index tags over {len(saccs.entities)} entities "
        f"({runtime.shards} shard{'s' if runtime.shards != 1 else ''}) at {server.url}"
    )
    print("  POST /search        POST /session/<id>/say   POST /admin/reindex")
    print("  GET  /healthz       GET  /metrics")
    if tracer is not None:
        print("  GET  /debug/traces  GET  /debug/trace/<id>   (repro trace <id>)")
    if not args.no_collector:
        print("  GET  /debug/timeseries  GET  /debug/slo      (repro top)")
    if tracer is not None:
        print("  GET  /debug/profile                          (repro profile)")
    print("  (Ctrl-C to stop)")
    server.serve_forever()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    from repro.obs import render_trace, to_collapsed_stacks

    def render(trace) -> int:
        print(to_collapsed_stacks(trace) if args.collapsed else render_trace(trace))
        return 0

    if args.input:
        with open(args.input, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        # Accept both a bare trace payload and the /debug/trace envelope.
        return render(payload.get("trace", payload))
    try:
        if args.trace_id is None:
            with urlopen(f"{args.url}/debug/traces") as response:
                snapshot = json.load(response)
            if not snapshot.get("enabled", True):
                print("tracing is disabled on this server (started with --no-trace)")
                return 1
            for section in ("recent", "slow"):
                print(f"{section} ({len(snapshot[section])}):")
                for summary in snapshot[section]:
                    print(
                        f"  {summary['trace_id']}  {summary['name']:<16}"
                        f"{summary['duration_seconds'] * 1000:>10.3f}ms"
                        f"  {summary['spans']:>3} spans"
                        + ("  slow" if summary["slow"] else "")
                    )
            return 0
        with urlopen(f"{args.url}/debug/trace/{args.trace_id}") as response:
            payload = json.load(response)
        return render(payload["trace"])
    except HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace")
        print(f"server returned {exc.code}: {detail}", file=sys.stderr)
        return 1
    except URLError as exc:
        print(f"cannot reach {args.url}: {exc.reason}", file=sys.stderr)
        return 1


def _cmd_profile(args: argparse.Namespace) -> int:
    import json
    from urllib.error import HTTPError, URLError
    from urllib.parse import urlencode
    from urllib.request import urlopen

    from repro.obs import merge_traces, render_profile, render_profile_diff

    def render(payload) -> int:
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        elif "diff" in payload:
            print(render_profile_diff(payload["diff"], top=args.top))
        else:
            print(render_profile(payload, top=args.top))
        return 0

    if args.input:
        with open(args.input, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        # Accept a saved /debug/profile payload, a /debug/profile?diff=
        # payload, or a plain list of trace payloads (merged locally).
        if isinstance(payload, list):
            payload = merge_traces(payload)
        return render(payload)
    params = {}
    if args.limit is not None:
        params["limit"] = args.limit
    if args.slow_only:
        params["slow_only"] = "true"
    if args.diff is not None:
        params["diff"] = args.diff
    query = f"?{urlencode(params)}" if params else ""
    try:
        with urlopen(f"{args.url}/debug/profile{query}") as response:
            return render(json.load(response))
    except HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace")
        print(f"server returned {exc.code}: {detail}", file=sys.stderr)
        return 1
    except URLError as exc:
        print(f"cannot reach {args.url}: {exc.reason}", file=sys.stderr)
        return 1


def _cmd_top(args: argparse.Namespace) -> int:
    import json
    import time
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    from repro.obs.dashboard import render_dashboard

    def fetch(path):
        try:
            with urlopen(f"{args.url}{path}") as response:
                return json.load(response)
        except (HTTPError, URLError, json.JSONDecodeError):
            return None

    frames = 0
    while True:
        health = fetch("/healthz")
        if health is None and frames == 0:
            print(f"cannot reach {args.url}", file=sys.stderr)
            return 1
        frame = render_dashboard(
            health,
            fetch(f"/debug/timeseries?limit={args.window}"),
            fetch("/debug/slo"),
        )
        if frames and not args.no_clear:
            # Home + clear-to-end repaints in place without scrollback spam.
            sys.stdout.write("\x1b[H\x1b[J")
        print(frame)
        frames += 1
        if args.iterations is not None and frames >= args.iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import run_load_benchmark, write_serve_record

    payload = run_load_benchmark(
        seed=args.seed,
        clients=tuple(args.clients),
        requests_per_client=args.requests,
        entities=args.entities,
        mean_reviews=args.reviews,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        workers=args.workers,
        progress=print,
    )
    header = f"{'batching':<10}{'clients':>8}{'rps':>10}{'p50 ms':>9}{'p95 ms':>9}{'batch':>7}"
    print(header)
    print("-" * len(header))
    for cell in payload["cells"]:
        latency = cell["latency_seconds"]
        print(
            f"{'on' if cell['batching'] else 'off':<10}{cell['clients']:>8}"
            f"{cell['throughput_rps']:>10.1f}{latency['p50'] * 1000:>9.2f}"
            f"{latency['p95'] * 1000:>9.2f}{cell['batch_size']['mean']:>7.1f}"
        )
    summary = payload["summary"]
    print(
        f"speedup at {summary['peak_clients']} clients "
        f"(batching on vs off): {summary['speedup_batching_at_peak']:.2f}x"
    )
    tracing = summary["tracing"]
    print(
        f"tracing overhead at {tracing['clients']} clients "
        f"(1-in-{tracing['sample_every']} sampling): "
        f"{tracing['tracing_overhead_frac'] * 100:.2f}% "
        f"({tracing['throughput_rps_traced']:.1f} traced vs "
        f"{tracing['throughput_rps_untraced']:.1f} untraced rps)"
    )
    collector = summary["collector"]
    print(
        f"collector overhead at {collector['clients']} clients "
        f"({collector['interval_seconds'] * 1000:.0f}ms cadence): "
        f"{collector['collector_overhead_frac'] * 100:.2f}% "
        f"({collector['throughput_rps_collector_on']:.1f} on vs "
        f"{collector['throughput_rps_collector_off']:.1f} off rps)"
    )
    path = write_serve_record(payload, args.output)
    print(f"wrote {path}")
    return 0


def _cmd_bench_extract(args: argparse.Namespace) -> int:
    from repro.core.extraction_bench import run_extraction_benchmark, write_extract_record

    payload = run_extraction_benchmark(
        seed=args.seed,
        entities=args.entities,
        mean_reviews=args.reviews,
        batch_sentences=args.batch_sentences,
        pairing_workers=args.workers,
        train_epochs=args.train_epochs,
        progress=print,
    )
    header = f"{'variant':<20}{'ingest s':>10}{'speedup':>9}{'cache hit%':>12}"
    print(header)
    print("-" * len(header))
    speedup = payload["summary"]["speedup"]
    for name, cell in payload["variants"].items():
        ratio = speedup.get(name)
        cache = cell["cache"]
        print(
            f"{name:<20}{cell['ingest_seconds']:>10.3f}"
            f"{(f'{ratio:.2f}x' if ratio is not None else '1.00x'):>9}"
            f"{cache['hit_ratio'] * 100:>11.1f}%"
        )
    print(
        f"bucketed+parallel over sequential: "
        f"{speedup['bucketed_parallel']:.2f}x; warm-cache reingest: "
        f"{speedup['warm_cache']:.2f}x at "
        f"{payload['summary']['warm_cache_hit_ratio'] * 100:.1f}% hits"
    )
    encode = payload["encode"]
    print(f"{'encode path':<20}{'seconds':>10}{'speedup':>9}{'max err':>12}{'tags':>6}")
    tape_seconds = encode["seconds"]["tape_float64"]
    print(f"{'tape_float64':<20}{tape_seconds:>10.3f}{'1.00x':>9}{'oracle':>12}{'=':>6}")
    for precision in ("float64", "float32", "int8"):
        cell_seconds = encode["seconds"][precision]
        report = encode["equivalence"][precision]
        print(
            f"{'fused_' + precision:<20}{cell_seconds:>10.3f}"
            f"{tape_seconds / cell_seconds:>8.2f}x"
            f"{report['max_abs_error']:>12.2e}"
            f"{'=' if report['tags_identical'] else '!':>6}"
        )
    path = write_extract_record(payload, args.output)
    print(f"wrote {path}")
    return 0


def _cmd_bench_index(args: argparse.Namespace) -> int:
    from repro.core.bench_index import run_index_benchmark, write_index_record

    payload = run_index_benchmark(
        seed=args.seed,
        entities=args.entities,
        review_tags=args.review_tags,
        index_tags=args.index_tags,
        queries=args.queries,
        shard_counts=tuple(args.shards),
        lookup_workers=args.lookup_workers,
        availability_samples=args.availability_samples,
        rebuild_rounds=args.rebuild_rounds,
        progress=print,
    )
    speedup = payload["speedup"]
    print(
        f"backend: vectorized over scalar {speedup['total']:.1f}x total "
        f"(build {speedup['build']:.1f}x, lookup {speedup['lookup']:.1f}x, "
        f"max |delta| {payload['max_abs_delta']:.2e})"
    )
    shards = payload["shards"]
    header = f"{'cell':<10}{'build s':>9}{'lookup s':>10}{'vs dense':>10}"
    print(header)
    print("-" * len(header))
    dense_seconds = shards["baseline"]["lookup_seconds"]
    print(f"{'dense':<10}{'-':>9}{dense_seconds:>10.3f}{'1.00x':>10}")
    for name, cell in shards["cells"].items():
        print(
            f"{name:<10}{cell['build_seconds']:>9.3f}{cell['lookup_seconds']:>10.3f}"
            f"{cell['lookup_speedup_vs_dense']:>9.2f}x"
        )
    print(f"sharded lookups byte-identical to oracle: {shards['identical_to_oracle']}")
    snapshot = payload["snapshot"]
    print(
        f"snapshot: save {snapshot['save_seconds']:.2f}s, "
        f"load {snapshot['load_seconds']:.2f}s vs cold build "
        f"{snapshot['cold_build_seconds']:.2f}s "
        f"({snapshot['speedup']['warm_start']:.1f}x warm start; "
        f"rankings identical: {snapshot['rankings_identical']})"
    )
    availability = payload["availability"]
    print(
        f"availability: p99 {availability['rebuild_p99_ms']:.1f}ms during rebuild vs "
        f"{availability['idle_p99_ms']:.1f}ms idle "
        f"(ratio {availability['availability_ratio']:.2f}, "
        f"generation monotonic: {availability['generation_monotonic']})"
    )
    path = write_index_record(payload, args.output)
    print(f"wrote {path}")
    return 0


def _cmd_bench_conv(args: argparse.Namespace) -> int:
    from repro.conversation.bench import run_conv_benchmark, write_conv_record

    payload = run_conv_benchmark(
        seed=args.seed,
        entities=args.entities,
        mean_reviews=args.reviews,
        sessions=args.sessions,
        turns=args.turns,
        train_epochs=args.train_epochs,
        progress=print,
    )
    routes = payload["routes"]["counts"]
    total = payload["config"]["total_turns"]
    print(f"{'route':<12}{'turns':>7}{'fraction':>10}")
    print("-" * 29)
    for route in ("subjective", "objective", "chitchat"):
        count = routes[route]
        print(f"{route:<12}{count:>7}{count / total * 100 if total else 0:>9.1f}%")
    bypass = payload["bypass"]
    coref = payload["coref"]
    print(
        f"extractor calls: {bypass['extractor_calls_stage_off']} -> "
        f"{bypass['extractor_calls_stage_on']} "
        f"({bypass['extractor_call_reduction'] * 100:.1f}% reduction, "
        f"routed fraction {bypass['routed_fraction'] * 100:.1f}%)"
    )
    print(
        f"coref: {coref['hits']} hits / {coref['misses']} misses "
        f"({coref['resolution_rate'] * 100:.1f}% resolved); "
        f"topic shifts: {payload['shifts']['detected']}"
    )
    path = write_conv_record(payload, args.output)
    print(f"wrote {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        render_human,
        render_json,
        rules_by_family,
        run_analysis,
        write_baseline,
    )
    from repro.analysis.baseline import (
        entry_key,
        load_baseline_entries,
        write_baseline_entries,
    )
    from repro.analysis.engine import changed_files

    if args.list_rules:
        for family, rules in rules_by_family().items():
            print(family)
            for rule in rules:
                scope = f"  [scope: {', '.join(rule.scope)}]" if rule.scope else ""
                print(f"  {rule.rule_id:<24}{rule.summary}{scope}")
        return 0
    paths = args.paths
    if args.changed:
        changed = changed_files(base=args.base, cwd=args.root)
        if changed is None:
            print("# not a git repo (or git unavailable); falling back to full sweep")
        else:
            paths = changed
            if not paths:
                print("no python files changed; nothing to lint")
                return 0
    baseline_path = None if args.no_baseline else args.baseline
    result = run_analysis(paths, root=args.root, baseline_path=baseline_path)
    if args.update_baseline:
        count = write_baseline(args.baseline, result.new + result.baselined)
        print(f"wrote {count} accepted findings to {args.baseline}")
        return 0
    if args.prune_baseline:
        stale = set(result.stale_baseline)
        entries = load_baseline_entries(args.baseline)
        kept = [entry for entry in entries if entry_key(entry) not in stale]
        if len(kept) < len(entries):
            write_baseline_entries(args.baseline, kept)
        print(
            f"pruned {len(entries) - len(kept)} stale entries from "
            f"{args.baseline} ({len(kept)} kept)"
        )
        return 0
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_human(result, verbose=args.verbose))
    return 0 if result.ok else 1


def _cmd_locks(args: argparse.Namespace) -> int:
    import ast as _ast

    from repro.analysis.concurrency import (
        analyze_program,
        render_dot,
        render_locks_human,
        report_payload,
    )
    from repro.analysis.engine import _relpath, iter_python_files, run_analysis
    from repro.analysis.registry import ParsedModule, get_rule
    from repro.analysis.reporters import result_payload

    root = os.path.abspath(args.root or os.getcwd())
    modules = []
    for path in iter_python_files(args.paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = _ast.parse(source, filename=path)
        except SyntaxError:
            continue
        modules.append(
            ParsedModule(
                path=_relpath(path, root), tree=tree, lines=source.splitlines()
            )
        )
    report = analyze_program(modules)
    if args.dot:
        tmp = args.dot + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(render_dot(report) + "\n")
        os.replace(tmp, args.dot)
        # stderr so `--format json` stdout stays machine-parseable.
        print(f"wrote {args.dot}", file=sys.stderr)

    # Triage cycles/blocking through the same suppression + baseline
    # machinery as `repro lint`, so intentional exceptions stay visible but
    # non-failing and anything new fails the command (and the tier-1 guard).
    rules = [get_rule("lock-order-cycle"), get_rule("lock-held-blocking")]
    baseline_path = None if args.no_baseline else args.baseline
    triage = run_analysis(args.paths, root=args.root, rules=rules, baseline_path=baseline_path)
    if args.format == "json":
        payload = report_payload(report)
        payload["triage"] = result_payload(triage)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_locks_human(report))
        if triage.suppressed or triage.baselined:
            print(
                f"(intentional: {len(triage.suppressed)} suppressed inline, "
                f"{len(triage.baselined)} baselined)"
            )
        if triage.new:
            print(f"{len(triage.new)} UNSUPPRESSED findings:")
            for finding in triage.new:
                print(f"  {finding.path}:{finding.line}  {finding.rule_id}  {finding.message}")
    return 0 if triage.ok else 1


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data import DATASET_SPECS

    print(f"{'id':<4}{'description':<26}{'domain':<14}{'train':>7}{'test':>7}")
    for spec in DATASET_SPECS.values():
        print(
            f"{spec.key:<4}{spec.description:<26}{spec.domain:<14}"
            f"{spec.train_size:>7}{spec.test_size:>7}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__.split("\n")[0])
    subparsers = parser.add_subparsers(dest="command", required=True)

    world = subparsers.add_parser("world", help="generate or inspect worlds")
    world_sub = world.add_subparsers(dest="world_command", required=True)
    generate = world_sub.add_parser("generate", help="generate a world snapshot")
    generate.add_argument("--entities", type=int, default=60)
    generate.add_argument("--reviews", type=float, default=15.0)
    generate.add_argument("--seed", type=int, default=2021)
    generate.add_argument("--fraud", action="store_true", help="inject fake-review campaigns")
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_world_generate)
    show = world_sub.add_parser("show", help="summarise a world snapshot")
    show.add_argument("--path", required=True)
    show.add_argument("--entity", help="print this entity's reviews")
    show.add_argument("--limit", type=int, default=5)
    show.set_defaults(func=_cmd_world_show)

    index = subparsers.add_parser("index", help="build tag indexes")
    index_sub = index.add_subparsers(dest="index_command", required=True)
    build = index_sub.add_parser("build", help="build a subjective tag index")
    build.add_argument("--world", required=True)
    build.add_argument("--out", required=True)
    build.add_argument("--tags", nargs="*", help="tags to index (default: the 18 dimensions)")
    build.add_argument("--theta", type=float, default=0.70)
    build.add_argument("--theta-mode", choices=["static", "dynamic"], default="static")
    build.add_argument("--filter-fraud", action="store_true", help="drop suspicious reviews")
    build.set_defaults(func=_cmd_index_build)

    search = subparsers.add_parser("search", help="answer a subjective query")
    search.add_argument("--world", required=True)
    search.add_argument("--index", required=True)
    search.add_argument("--top-k", type=int, default=10)
    search.add_argument("--theta", type=float, default=0.60)
    search.add_argument("tags", nargs="+", help='subjective tags, e.g. "delicious food"')
    search.set_defaults(func=_cmd_search)

    serve = subparsers.add_parser("serve", help="run the JSON-over-HTTP serving runtime")
    serve.add_argument("--world", help="world snapshot to serve (default: generate one)")
    serve.add_argument("--entities", type=int, default=60)
    serve.add_argument("--reviews", type=float, default=12.0)
    serve.add_argument("--seed", type=int, default=2021)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8350)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--max-batch-size", type=int, default=16)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument("--cache-size", type=int, default=4096)
    serve.add_argument("--session-ttl", type=float, default=1800.0)
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="entity shards for the tag index (stable sha256 routing; "
        "lookups stay byte-identical to 1 shard)",
    )
    serve.add_argument(
        "--lookup-workers",
        type=int,
        default=0,
        help="threads fanning a lookup over the shards (0 = in-line)",
    )
    serve.add_argument(
        "--snapshot-dir",
        help="warm-start the index from this snapshot directory; on a "
        "missing or corrupt snapshot, cold-build and write a fresh one",
    )
    serve.add_argument(
        "--encoder-precision",
        choices=("float64", "float32", "int8"),
        default="float64",
        help="tape-free fused inference precision for utterance extraction "
        "(float64 is bitwise-identical to the training forward)",
    )
    serve.add_argument(
        "--no-trace", action="store_true", help="disable request tracing"
    )
    serve.add_argument(
        "--trace-capacity", type=int, default=256, help="recent traces retained"
    )
    serve.add_argument(
        "--trace-sample",
        type=int,
        default=32,
        help="trace 1 of every N requests (1 = trace everything)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=50.0,
        help="slow-exemplar threshold in milliseconds",
    )
    serve.add_argument(
        "--no-collector",
        action="store_true",
        help="disable the background metrics collector (no /debug/timeseries "
        "points, frozen SLO burn rates)",
    )
    serve.add_argument(
        "--collector-interval",
        type=float,
        default=1.0,
        help="collector sampling cadence in seconds",
    )
    serve.add_argument(
        "--collector-retention",
        type=int,
        default=512,
        help="time-series points retained in the ring buffer",
    )
    serve.add_argument(
        "--slo-latency-ms",
        type=float,
        default=100.0,
        help="latency-SLO threshold: 99%% of searches must finish within this",
    )
    serve.set_defaults(func=_cmd_serve)

    trace = subparsers.add_parser(
        "trace", help="render span trees from a serving runtime's trace store"
    )
    trace.add_argument(
        "trace_id", nargs="?", help="trace id (omit to list recent + slow traces)"
    )
    trace.add_argument(
        "--url", default="http://127.0.0.1:8350", help="server base URL"
    )
    trace.add_argument(
        "--input", help="render a saved /debug/trace JSON file instead of fetching"
    )
    trace.add_argument(
        "--collapsed",
        action="store_true",
        help="emit collapsed-stack (flamegraph) lines instead of a tree",
    )
    trace.set_defaults(func=_cmd_trace)

    profile = subparsers.add_parser(
        "profile",
        help="merged flamegraph over a serving runtime's trace store",
    )
    profile.add_argument(
        "--url", default="http://127.0.0.1:8350", help="server base URL"
    )
    profile.add_argument(
        "--input",
        help="render a saved /debug/profile payload (or a JSON list of "
        "trace payloads) instead of fetching",
    )
    profile.add_argument(
        "--limit", type=int, help="merge at most this many traces (newest first)"
    )
    profile.add_argument(
        "--slow-only", action="store_true", help="merge only the slow exemplars"
    )
    profile.add_argument(
        "--diff",
        type=int,
        help="diff mode: newest N traces vs the rest of the window "
        "(per-trace-normalised deltas)",
    )
    profile.add_argument(
        "--top", type=int, default=20, help="stacks listed in the rendering"
    )
    profile.add_argument(
        "--json", action="store_true", help="print the raw payload instead"
    )
    profile.set_defaults(func=_cmd_profile)

    top = subparsers.add_parser(
        "top", help="live terminal dashboard for a serving runtime"
    )
    top.add_argument(
        "--url", default="http://127.0.0.1:8350", help="server base URL"
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between repaints"
    )
    top.add_argument(
        "--window",
        type=int,
        default=48,
        help="time-series points fetched per frame (sparkline width)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        help="render this many frames then exit (default: until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of repainting in place",
    )
    top.set_defaults(func=_cmd_top)

    bench_serve = subparsers.add_parser(
        "bench-serve", help="closed-loop load benchmark of the serving runtime"
    )
    bench_serve.add_argument("--seed", type=int, default=7)
    bench_serve.add_argument("--clients", type=int, nargs="+", default=[1, 4, 16])
    bench_serve.add_argument("--requests", type=int, default=60, help="requests per client")
    bench_serve.add_argument("--entities", type=int, default=60)
    bench_serve.add_argument("--reviews", type=float, default=10.0)
    bench_serve.add_argument("--workers", type=int, default=2)
    bench_serve.add_argument("--max-batch-size", type=int, default=16)
    bench_serve.add_argument("--max-wait-ms", type=float, default=2.0)
    bench_serve.add_argument("--output", help="record path (default: ./BENCH_serve.json)")
    bench_serve.set_defaults(func=_cmd_bench_serve)

    bench_extract = subparsers.add_parser(
        "bench-extract",
        help="benchmark the batched extraction engine against sequential ingest",
    )
    bench_extract.add_argument("--seed", type=int, default=7)
    bench_extract.add_argument("--entities", type=int, default=60)
    bench_extract.add_argument("--reviews", type=float, default=10.0)
    bench_extract.add_argument(
        "--batch-sentences", type=int, default=128, help="sentences per length bucket"
    )
    bench_extract.add_argument(
        "--workers", type=int, default=4, help="pairing pool threads (0 = serial)"
    )
    bench_extract.add_argument(
        "--train-epochs", type=int, default=2, help="tagger warm-up epochs before timing"
    )
    bench_extract.add_argument("--output", help="record path (default: ./BENCH_extract.json)")
    bench_extract.set_defaults(func=_cmd_bench_extract)

    bench_index = subparsers.add_parser(
        "bench-index",
        help="benchmark the tag index: sharding, snapshots, rebuild availability",
    )
    bench_index.add_argument("--seed", type=int, default=11)
    bench_index.add_argument("--entities", type=int, default=200)
    bench_index.add_argument(
        "--review-tags", type=int, default=2000, help="review-tag occurrences"
    )
    bench_index.add_argument("--index-tags", type=int, default=500)
    bench_index.add_argument("--queries", type=int, default=1000)
    bench_index.add_argument(
        "--shards", type=int, nargs="+", default=[1, 4, 8], help="shard-count cells"
    )
    bench_index.add_argument(
        "--lookup-workers", type=int, default=0, help="shard fan-out threads (0 = in-line)"
    )
    bench_index.add_argument(
        "--availability-samples",
        type=int,
        default=300,
        help="closed-loop searches per availability phase",
    )
    bench_index.add_argument(
        "--rebuild-rounds", type=int, default=3, help="background rebuilds to race"
    )
    bench_index.add_argument("--output", help="record path (default: ./BENCH_index.json)")
    bench_index.set_defaults(func=_cmd_bench_index)

    bench_conv = subparsers.add_parser(
        "bench-conv",
        help="benchmark the conversation stage: routing bypass, coref, equivalence",
    )
    bench_conv.add_argument("--seed", type=int, default=7)
    bench_conv.add_argument("--entities", type=int, default=36)
    bench_conv.add_argument("--reviews", type=float, default=8.0)
    bench_conv.add_argument("--sessions", type=int, default=12)
    bench_conv.add_argument("--turns", type=int, default=6, help="turns per session")
    bench_conv.add_argument(
        "--train-epochs", type=int, default=2, help="tagger warm-up epochs before the runs"
    )
    bench_conv.add_argument("--output", help="record path (default: ./BENCH_conv.json)")
    bench_conv.set_defaults(func=_cmd_bench_conv)

    lint = subparsers.add_parser(
        "lint",
        help="static analysis of concurrency/determinism/kernel invariants",
    )
    lint.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    lint.add_argument("--format", choices=["human", "json"], default="human")
    lint.add_argument(
        "--baseline",
        default="analysis/baseline.json",
        help="accepted-findings file (default: analysis/baseline.json)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true", help="report baselined findings as new"
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept the current findings",
    )
    lint.add_argument(
        "--root", help="directory finding paths are made relative to (default: cwd)"
    )
    lint.add_argument(
        "--verbose", action="store_true", help="also list baselined findings"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs --base (full sweep outside git)",
    )
    lint.add_argument(
        "--base", default="HEAD", help="git ref --changed diffs against (default: HEAD)"
    )
    lint.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline entries whose file+rule+line no longer fire",
    )
    lint.set_defaults(func=_cmd_lint)

    locks = subparsers.add_parser(
        "locks",
        help="whole-program lock-order graph, deadlock cycles, blocking-under-lock",
    )
    locks.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    locks.add_argument("--format", choices=["human", "json"], default="human")
    locks.add_argument("--dot", help="also write the lock-order graph as Graphviz dot")
    locks.add_argument(
        "--baseline",
        default="analysis/baseline.json",
        help="accepted-findings file (default: analysis/baseline.json)",
    )
    locks.add_argument(
        "--no-baseline", action="store_true", help="report baselined findings as new"
    )
    locks.add_argument(
        "--root", help="directory finding paths are made relative to (default: cwd)"
    )
    locks.set_defaults(func=_cmd_locks)

    datasets = subparsers.add_parser("datasets", help="list the S1-S4 benchmarks")
    datasets.set_defaults(func=_cmd_datasets)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
