"""Command-line interface: generate worlds, build indexes, run searches.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro world generate --entities 60 --reviews 15 --out world.json
    python -m repro world show --path world.json
    python -m repro index build --world world.json --out index.json
    python -m repro search --world world.json --index index.json \
        "delicious food" "nice staff"
    python -m repro datasets

All CLI paths use the oracle extractor (gold review annotations) so they run
in seconds; the neural pipeline lives in the examples and benchmarks.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_world_generate(args: argparse.Namespace) -> int:
    from repro.data import (
        CatalogConfig,
        FraudConfig,
        ReviewConfig,
        WorldConfig,
        build_world,
        inject_fraud,
        save_world,
    )

    config = WorldConfig(
        catalog=CatalogConfig(num_entities=args.entities, seed=args.seed),
        reviews=ReviewConfig(mean_reviews_per_entity=args.reviews, seed=args.seed),
    )
    world = build_world(config)
    if args.fraud:
        campaigns = inject_fraud(world, FraudConfig(seed=args.seed))
        print(f"injected {len(campaigns)} fraud campaigns")
    save_world(world, args.out)
    print(f"wrote {len(world.entities)} entities / {world.num_reviews} reviews to {args.out}")
    return 0


def _cmd_world_show(args: argparse.Namespace) -> int:
    from repro.data import load_world

    world = load_world(args.path)
    print(f"entities: {len(world.entities)}   reviews: {world.num_reviews}")
    stars = [e.stars for e in world.entities]
    print(f"stars: min={min(stars)} mean={np.mean(stars):.2f} max={max(stars)}")
    print("sample entities:")
    for entity in world.entities[: args.limit]:
        review_count = len(world.reviews.get(entity.entity_id, []))
        print(f"  {entity.entity_id}  {entity.name:<24} {entity.stars} stars  {review_count} reviews")
    if args.entity:
        for review in world.reviews.get(args.entity, [])[: args.limit]:
            print(f"  [{review.review_id}] {review.text}")
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.core import OracleExtractor, Saccs, SaccsConfig, SubjectiveTag, save_index
    from repro.data import load_world
    from repro.text import ConceptualSimilarity, restaurant_lexicon

    world = load_world(args.world)
    similarity = ConceptualSimilarity(restaurant_lexicon())
    config = SaccsConfig(theta_index=args.theta, theta_mode=args.theta_mode)
    review_filter = None
    if args.filter_fraud:
        from repro.core import FakeReviewFilter

        review_filter = FakeReviewFilter()
    saccs = Saccs(
        world.entities, world.reviews, OracleExtractor(), similarity, config,
        review_filter=review_filter,
    )
    tags = [SubjectiveTag.from_text(d.name) for d in world.dimensions]
    if args.tags:
        tags = [SubjectiveTag.from_text(t) for t in args.tags]
    saccs.build_index(tags)
    save_index(saccs.index, args.out)
    print(f"indexed {len(saccs.index)} tags over {len(world.entities)} entities -> {args.out}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.core import SubjectiveTag, load_index
    from repro.core.filtering import FilterConfig, filter_and_rank
    from repro.data import load_world
    from repro.text import ConceptualSimilarity, restaurant_lexicon

    world = load_world(args.world)
    similarity = ConceptualSimilarity(restaurant_lexicon())
    index = load_index(args.index, similarity)
    name_of = {e.entity_id: e.name for e in world.entities}
    tags = [SubjectiveTag.from_text(t) for t in args.tags]
    tag_sets = []
    for tag in tags:
        mapping = index.lookup(tag)
        if not mapping:
            mapping = index.lookup_similar(tag, theta_filter=args.theta)
            print(f"(tag {tag.text!r} not indexed; combined similar tags)")
        tag_sets.append(mapping)
    results = filter_and_rank(
        [e.entity_id for e in world.entities],
        tag_sets,
        FilterConfig(top_k=args.top_k),
    )
    print(f"query: {', '.join(t.text for t in tags)}")
    for rank, (entity_id, score) in enumerate(results, start=1):
        print(f"  {rank:2d}. {name_of.get(entity_id, entity_id):<26} {score:.3f}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data import DATASET_SPECS

    print(f"{'id':<4}{'description':<26}{'domain':<14}{'train':>7}{'test':>7}")
    for spec in DATASET_SPECS.values():
        print(
            f"{spec.key:<4}{spec.description:<26}{spec.domain:<14}"
            f"{spec.train_size:>7}{spec.test_size:>7}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__.split("\n")[0])
    subparsers = parser.add_subparsers(dest="command", required=True)

    world = subparsers.add_parser("world", help="generate or inspect worlds")
    world_sub = world.add_subparsers(dest="world_command", required=True)
    generate = world_sub.add_parser("generate", help="generate a world snapshot")
    generate.add_argument("--entities", type=int, default=60)
    generate.add_argument("--reviews", type=float, default=15.0)
    generate.add_argument("--seed", type=int, default=2021)
    generate.add_argument("--fraud", action="store_true", help="inject fake-review campaigns")
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_world_generate)
    show = world_sub.add_parser("show", help="summarise a world snapshot")
    show.add_argument("--path", required=True)
    show.add_argument("--entity", help="print this entity's reviews")
    show.add_argument("--limit", type=int, default=5)
    show.set_defaults(func=_cmd_world_show)

    index = subparsers.add_parser("index", help="build tag indexes")
    index_sub = index.add_subparsers(dest="index_command", required=True)
    build = index_sub.add_parser("build", help="build a subjective tag index")
    build.add_argument("--world", required=True)
    build.add_argument("--out", required=True)
    build.add_argument("--tags", nargs="*", help="tags to index (default: the 18 dimensions)")
    build.add_argument("--theta", type=float, default=0.70)
    build.add_argument("--theta-mode", choices=["static", "dynamic"], default="static")
    build.add_argument("--filter-fraud", action="store_true", help="drop suspicious reviews")
    build.set_defaults(func=_cmd_index_build)

    search = subparsers.add_parser("search", help="answer a subjective query")
    search.add_argument("--world", required=True)
    search.add_argument("--index", required=True)
    search.add_argument("--top-k", type=int, default=10)
    search.add_argument("--theta", type=float, default=0.60)
    search.add_argument("tags", nargs="+", help='subjective tags, e.g. "delicious food"')
    search.set_defaults(func=_cmd_search)

    datasets = subparsers.add_parser("datasets", help="list the S1-S4 benchmarks")
    datasets.set_defaults(func=_cmd_datasets)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
