"""JSON persistence for the subjective tag index.

Index construction reads every review; for a production-shaped service the
index is built offline and loaded at query time.  The snapshot stores both
the tag→entity mappings (for instant queries) and the per-entity extracted
review tags (so later indexing rounds can still adopt new tags without
re-reading reviews).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from repro.core.index import SubjectiveTagIndex
from repro.core.tags import SubjectiveTag
from repro.text.similarity import ConceptualSimilarity

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index: SubjectiveTagIndex, path: Union[str, Path]) -> None:
    """Write an index snapshot to ``path`` (JSON)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "theta_index": index.theta_index,
        "normalize_degrees": index.normalize_degrees,
        "review_count_mode": index.review_count_mode,
        "entries": {
            tag.text: mapping for tag, mapping in index._entries.items()
        },
        "entity_tags": {
            entity_id: [[t.text for t in review_tags] for review_tags in per_review]
            for entity_id, per_review in index._entity_tags.items()
        },
        "entity_review_counts": dict(index._entity_review_counts),
    }
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


def load_index(
    path: Union[str, Path],
    similarity: ConceptualSimilarity,
    backend: str = "vectorized",
) -> SubjectiveTagIndex:
    """Load an index snapshot written by :func:`save_index`.

    The similarity oracle is not serialised (it is code, not data) and must
    be supplied by the caller.  ``backend`` picks the compute backend for
    the restored index — a runtime choice, not snapshot data — so a serving
    process can load an offline-built snapshot straight onto the vectorized
    kernel (the matrix backing is rebuilt lazily on first lookup).

    Snapshots missing ``format_version``, or carrying one this code does
    not understand, are rejected loudly instead of being half-restored.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported index format version: {version!r} (this build reads {_FORMAT_VERSION})"
        )
    index = SubjectiveTagIndex(
        similarity,
        theta_index=payload["theta_index"],
        normalize_degrees=payload["normalize_degrees"],
        review_count_mode=payload["review_count_mode"],
        backend=backend,
    )
    # restore_snapshot re-interns every tag into the vocabulary and marks the
    # vectorized backing (occurrence arrays, similarity/degree matrices) for
    # lazy rebuild, so a loaded index answers lookup_similar immediately.
    index.restore_snapshot(
        entries={
            SubjectiveTag.from_text(text): dict(mapping)
            for text, mapping in payload["entries"].items()
        },
        entity_tags={
            entity_id: [
                [SubjectiveTag.from_text(t) for t in review_tags]
                for review_tags in per_review
            ]
            for entity_id, per_review in payload["entity_tags"].items()
        },
        entity_review_counts=payload["entity_review_counts"],
    )
    return index
