"""Subjective tags: the paper's central abstraction (Section 1).

A subjective tag is the concatenation of an aspect term and an opinion term
("delicious food" = opinion *delicious* + aspect *food*).  Tags are compared
with conceptual similarity, never by string equality alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["SubjectiveTag"]


@dataclass(frozen=True, order=True)
class SubjectiveTag:
    """An (aspect, opinion) pair, stored lower-case and whitespace-normal."""

    aspect: str
    opinion: str

    def __post_init__(self):
        object.__setattr__(self, "aspect", " ".join(self.aspect.lower().split()))
        object.__setattr__(self, "opinion", " ".join(self.opinion.lower().split()))
        if not self.aspect or not self.opinion:
            raise ValueError("subjective tag needs non-empty aspect and opinion")

    @property
    def text(self) -> str:
        """Canonical opinion-first rendering ("delicious food")."""
        return f"{self.opinion} {self.aspect}"

    @property
    def pair(self) -> Tuple[str, str]:
        """(aspect, opinion) tuple — the shape similarity oracles consume."""
        return (self.aspect, self.opinion)

    @classmethod
    def from_text(cls, text: str) -> "SubjectiveTag":
        """Parse an opinion-first phrase; the last word is the aspect.

        This matches the canonical rendering ("delicious food", "really
        quick service" → aspect = last token, opinion = the rest).
        """
        words = text.lower().split()
        if len(words) < 2:
            raise ValueError(f"cannot parse subjective tag from {text!r}")
        return cls(aspect=words[-1], opinion=" ".join(words[:-1]))

    def __str__(self) -> str:
        return self.text
