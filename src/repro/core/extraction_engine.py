"""Corpus-wide batched extraction engine (the fast path behind ingest).

``Saccs.ingest_reviews`` used to hand the extractor one review at a time:
every review paid one BERT forward (padded to its own longest sentence) and
one Python Viterbi loop per sentence.  This module restructures the whole
extraction pass around the corpus instead of the review:

1. **Flatten + bucket** — all sentences across all entities/reviews are
   flattened into one stream and stably sorted by token length; consecutive
   runs of up to ``batch_sentences`` sentences form *length buckets*, so
   each encoder forward is a large batch padded only to its bucket's max
   length (near-zero padding waste) instead of many tiny ragged batches.
2. **Batch decode** — each bucket's emissions go through the vectorized
   batch Viterbi (:meth:`repro.nn.crf.LinearChainCRF.decode_batch`): one
   ``(B, T, L)`` max-plus recurrence instead of a per-sentence Python loop.
3. **Parallel pairing** — the CPU-bound pairing stage (parse trees +
   heuristics / classifier) fans out across a thread pool; results come
   back in submission order, so output is deterministic regardless of
   worker count.  Only enable workers for state-free pairers (the tree /
   word-distance heuristics and the classifier); the attention heuristic
   runs an encoder forward per sentence and mutates shared model state, so
   it must stay serial.
4. **Incremental re-extraction** — an LRU :class:`ExtractionCache` keyed by
   a content hash of each review's sentence tokens.  Re-ingesting after a
   small corpus change (``Saccs.rebuild_index`` / ``/admin/reindex`` with
   ``full=true``) only re-tags new or edited reviews; unchanged reviews are
   served from the cache.  Hit/miss counters flow into a bound
   ``MetricsRegistry`` (``extract.cache.hit`` / ``extract.cache.miss``, so
   ``/metrics`` rolls them into a ratio) and are also kept as plain ints on
   the cache for metrics-free callers.

Equivalence guarantee: per-sentence tagging is batch-invariant (padding is
masked all the way through BERT, the BiLSTM and the CRF), and pairing plus
per-review dedup run exactly the sequential code — so the engine's tag list
per review is **identical** (same tags, same order) to
``TagExtractor.extract_review``.  The integration tests assert this on a
seeded world; ``repro bench-extract`` re-checks it on every run.
"""

from __future__ import annotations

import contextvars
import hashlib
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.extractor import OracleExtractor, TagExtractor, _pairs_to_tags
from repro.core.tags import SubjectiveTag
from repro.data.schema import Review
from repro.text.labels import labels_to_spans
from repro.utils.locks import make_lock
from repro.utils.timing import StageTimings

__all__ = ["ExtractionEngineConfig", "ExtractionCache", "ExtractionEngine"]


@dataclass
class ExtractionEngineConfig:
    """Knobs for the batched extraction pass."""

    #: sentences per length bucket — the encoder forward's batch size.
    batch_sentences: int = 64
    #: pairing pool size; 0 or 1 keeps the pairing stage serial.
    pairing_workers: int = 0
    #: cache extracted tags per review content hash (incremental reingest).
    cache_enabled: bool = True
    #: retained cache entries (reviews); oldest-used entries are evicted.
    cache_capacity: int = 200_000
    #: precision for the tagger's tape-free fused encode path:
    #: ``"float64"`` is bitwise-identical to the autograd forward,
    #: ``"float32"`` / ``"int8"`` trade tolerance-bounded emission error
    #: for speed (see :mod:`repro.nn.infer`).
    encoder_precision: str = "float64"

    def __post_init__(self):
        if self.batch_sentences < 1:
            raise ValueError("batch_sentences must be >= 1")
        if self.pairing_workers < 0:
            raise ValueError("pairing_workers must be >= 0")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        from repro.nn.infer import PRECISIONS

        if self.encoder_precision not in PRECISIONS:
            raise ValueError(
                f"encoder_precision must be one of {PRECISIONS}, got {self.encoder_precision!r}"
            )


class ExtractionCache:
    """LRU map from review content hash → extracted tag tuple.

    The key is a hash of the review's sentence tokens only — deliberately
    not the review id — so an edited review misses (its content changed)
    while an unchanged review hits even if the surrounding corpus was
    re-shuffled, and byte-identical duplicate reviews share one entry.
    """

    def __init__(self, capacity: int = 200_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = make_lock("core.extract.cache")
        self._entries: "OrderedDict[str, Tuple[SubjectiveTag, ...]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(review: Review) -> str:
        """Content hash of the review's sentence token streams."""
        digest = hashlib.sha256()
        for sentence in review.sentences:
            digest.update("\x1f".join(sentence.tokens).encode("utf-8"))
            digest.update(b"\x1e")
        return digest.hexdigest()

    def get(self, key: str) -> Optional[Tuple[SubjectiveTag, ...]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, tags: Sequence[SubjectiveTag]) -> None:
        with self._lock:
            self._entries[key] = tuple(tags)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ExtractionEngine:
    """Bucketed, parallel, cache-aware driver around one extractor.

    Works with both extractor kinds: the neural :class:`TagExtractor` gets
    the full bucketed tagging + parallel pairing pipeline; the
    :class:`OracleExtractor` (no encoder to batch) keeps its per-review
    gold read but still benefits from the cache on reingest.
    """

    def __init__(
        self,
        extractor,
        config: Optional[ExtractionEngineConfig] = None,
        metrics=None,
        timings: Optional[StageTimings] = None,
    ):
        self.extractor = extractor
        self.config = config or ExtractionEngineConfig()
        #: anything with ``incr(name, amount=1)`` — typically the serving
        #: :class:`~repro.serve.metrics.MetricsRegistry` (duck-typed here to
        #: keep ``repro.core`` import-independent of ``repro.serve``).
        self.metrics = metrics
        # The "extract." prefix mirrors every stage timing into the active
        # request trace as a span (no-op when untraced), so serving span
        # trees show encode/decode/pair without instrumenting the tagger.
        self.timings = timings or StageTimings(span_prefix="extract.")
        self.cache: Optional[ExtractionCache] = (
            ExtractionCache(self.config.cache_capacity) if self.config.cache_enabled else None
        )
        #: serialises tagger access: the neural tagger's eval/train flip and
        #: fused-weight scratch buffers are shared state, and a background
        #: index rebuild extracts the corpus concurrently with serving
        #: micro-batches.  Never held while any other lock is taken.
        self._tagger_lock = make_lock("core.extract.tagger")

    def bind_metrics(self, metrics) -> None:
        """Attach a counter sink (e.g. the serving ``MetricsRegistry``)."""
        self.metrics = metrics

    def _incr(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            # repro: disable=metric-name-literal — nil-guard forwarder; every
            # call site passes a literal, which the rule checks at those sites.
            self.metrics.incr(name, amount)

    # ------------------------------------------------------------------ tagging

    def _tag_sentences(self, sentences: Sequence[Sequence[str]]) -> List[List[str]]:
        """Per-sentence IOB labels via length-bucketed batch prediction.

        Sentences are stably sorted by token length, chunked into buckets of
        ``batch_sentences``, predicted one bucket per encoder forward, and
        scattered back to their original slots.
        """
        order = sorted(range(len(sentences)), key=lambda i: len(sentences[i]))
        labels: List[Optional[List[str]]] = [None] * len(sentences)
        cap = self.config.batch_sentences
        tagger = self.extractor.tagger
        precision = self.config.encoder_precision
        with self._tagger_lock:
            return self._tag_sentences_locked(order, labels, cap, tagger, precision, sentences)

    def _tag_sentences_locked(self, order, labels, cap, tagger, precision, sentences):
        # Hold eval mode across the whole bucket loop: each predict() on a
        # train-mode tagger would otherwise restore train mode on exit,
        # which bumps the weights version and forces a fresh fused-weight
        # export per bucket instead of one per ingest pass.
        was_training = tagger.training
        if was_training:
            tagger.eval()
        try:
            for start in range(0, len(order), cap):
                bucket = order[start : start + cap]
                predicted = tagger.predict(
                    [list(sentences[i]) for i in bucket],
                    timings=self.timings,
                    precision=precision,
                )
                for slot, seq in zip(bucket, predicted):
                    labels[slot] = seq
                self._incr("extract.batches")
                self._incr("extract.sentences", len(bucket))
        finally:
            if was_training:
                tagger.train()
        return labels  # type: ignore[return-value]

    # ------------------------------------------------------------------ pairing

    def _pair_sentences(
        self,
        sentences: Sequence[Sequence[str]],
        labels: Sequence[Sequence[str]],
    ) -> List[List[SubjectiveTag]]:
        """Pairing stage over tagged sentences, optionally fanned out.

        ``ThreadPoolExecutor.map`` returns results in submission order, so
        the output is deterministic for any worker count.
        """
        pairer = self.extractor.pairer

        def pair_one(i: int) -> List[SubjectiveTag]:
            tokens = sentences[i]
            aspect_spans, opinion_spans = labels_to_spans(labels[i])
            return _pairs_to_tags(tokens, pairer.pair(tokens, aspect_spans, opinion_spans))

        workers = self.config.pairing_workers
        total = len(sentences)
        with self.timings.span("pair"):
            if workers > 1 and total > 1:
                # Contiguous chunks (a few per worker) keep dispatch overhead
                # off the per-sentence path; extending in chunk order keeps
                # the output deterministic.
                chunk = max(1, -(-total // (workers * 4)))
                starts = list(range(0, total, chunk))
                # One context copy per submitted chunk, made here in the
                # submitting thread: pool workers inherit the active trace
                # group (a Context cannot be entered concurrently, so the
                # copies must be distinct).
                contexts = [contextvars.copy_context() for _ in starts]
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    parts = pool.map(
                        lambda job: job[0].run(
                            lambda start: [
                                pair_one(i)
                                for i in range(start, min(start + chunk, total))
                            ],
                            job[1],
                        ),
                        zip(contexts, starts),
                    )
                    out: List[List[SubjectiveTag]] = []
                    for part in parts:
                        out.extend(part)
                    return out
            return [pair_one(i) for i in range(total)]

    # ------------------------------------------------------------------ reviews

    def extract_reviews(self, reviews: Sequence[Review]) -> List[List[SubjectiveTag]]:
        """Tag lists for a flat review stream (cache → bucket → pair → dedup).

        Identical (same tags, same order) to calling
        ``extractor.extract_review`` once per review.
        """
        results: List[Optional[List[SubjectiveTag]]] = [None] * len(reviews)
        miss_slots: List[int] = []
        keys: List[Optional[str]] = []
        for slot, review in enumerate(reviews):
            if self.cache is not None:
                key = ExtractionCache.key_for(review)
                keys.append(key)
                cached = self.cache.get(key)
                if cached is not None:
                    self._incr("extract.cache.hit")
                    results[slot] = list(cached)
                    continue
                self._incr("extract.cache.miss")
            else:
                keys.append(None)
            miss_slots.append(slot)
        if miss_slots:
            if isinstance(self.extractor, TagExtractor):
                self._extract_misses_batched(reviews, miss_slots, results)
            else:
                for slot in miss_slots:
                    results[slot] = self.extractor.extract_review(reviews[slot])
            if self.cache is not None:
                for slot in miss_slots:
                    self.cache.put(keys[slot], results[slot])  # type: ignore[arg-type]
        return results  # type: ignore[return-value]

    def _extract_misses_batched(
        self,
        reviews: Sequence[Review],
        miss_slots: Sequence[int],
        results: List[Optional[List[SubjectiveTag]]],
    ) -> None:
        """Bucketed tagging + pairing for the cache-missing reviews."""
        sentences: List[List[str]] = []
        owner: List[int] = []
        for slot in miss_slots:
            for sentence in reviews[slot].sentences:
                sentences.append(list(sentence.tokens))
                owner.append(slot)
        labels = self._tag_sentences(sentences)
        per_sentence = self._pair_sentences(sentences, labels)
        # Reassemble per review: sentence order is preserved (owner runs are
        # contiguous), dedup keeps the first occurrence — the exact
        # semantics of ``TagExtractor.extract_review``.
        assembled: Dict[int, List[SubjectiveTag]] = {slot: [] for slot in miss_slots}
        seen: Dict[int, Set[SubjectiveTag]] = {slot: set() for slot in miss_slots}
        for slot, tags in zip(owner, per_sentence):
            bucket_seen = seen[slot]
            bucket_tags = assembled[slot]
            for tag in tags:
                if tag not in bucket_seen:
                    bucket_seen.add(tag)
                    bucket_tags.append(tag)
        for slot in miss_slots:
            results[slot] = assembled[slot]

    def extract_corpus(
        self, entity_reviews: Sequence[Tuple[str, Sequence[Review]]]
    ) -> List[Tuple[str, List[List[SubjectiveTag]]]]:
        """Per-entity per-review tag lists with one corpus-wide flat pass."""
        flat: List[Review] = []
        spans: List[Tuple[str, int, int]] = []
        for entity_id, reviews in entity_reviews:
            spans.append((entity_id, len(flat), len(flat) + len(reviews)))
            flat.extend(reviews)
        all_tags = self.extract_reviews(flat)
        return [(entity_id, all_tags[lo:hi]) for entity_id, lo, hi in spans]

    # --------------------------------------------------------------- utterances

    def extract_token_lists(
        self, token_lists: Sequence[Sequence[str]]
    ) -> List[List[SubjectiveTag]]:
        """Bucketed extraction for raw token lists (utterance micro-batches).

        No cache here — the serving layer already caches per (utterance,
        generation).  Used by ``SaccsRuntime`` so the utterances of one
        micro-batch share encoder forwards.
        """
        if not isinstance(self.extractor, TagExtractor):
            raise TypeError("utterance extraction needs a neural TagExtractor")
        if not token_lists:
            return []
        sentences = [list(tokens) for tokens in token_lists]
        labels = self._tag_sentences(sentences)
        return self._pair_sentences(sentences, labels)

    # ------------------------------------------------------------------ stats

    def cache_stats(self) -> Dict[str, object]:
        """JSON-serialisable cache counters (zeros when caching is off)."""
        if self.cache is None:
            return {"enabled": False, "entries": 0, "hits": 0, "misses": 0, "hit_ratio": 0.0}
        hits, misses = self.cache.hits, self.cache.misses
        total = hits + misses
        return {
            "enabled": True,
            "entries": len(self.cache),
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / total if total else 0.0,
        }
