"""``repro.core`` — the paper's contribution: SACCS.

Subjective tags, the BERT+BiLSTM+CRF tagger with FGSM adversarial training,
the pairing heuristics and data-programming pairing pipeline, the subjective
tag index with degrees of truth, filtering & ranking (Algorithm 1), the
dialog-system shim, the SACCS facade, and the IR/SIM baselines.
"""

from repro.core.baselines import IRBaseline, SimBaseline
from repro.core.dialog import DialogSystem, IntentRecognizer, ParsedUtterance, SearchApi
from repro.core.evaluation import (
    ClassificationReport,
    SpanF1,
    classification_report,
    span_f1,
)
from repro.core.extraction_engine import (
    ExtractionCache,
    ExtractionEngine,
    ExtractionEngineConfig,
)
from repro.core.extractor import (
    ClassifierPairer,
    HeuristicPairer,
    OracleExtractor,
    Pairer,
    TagExtractor,
)
from repro.core.filtering import FilterConfig, aggregate_scores, filter_and_rank
from repro.core.fraud import FakeReviewFilter, FraudFilterConfig
from repro.core.index_io import load_index, save_index
from repro.core.profiles import UserProfile, personalized_rank
from repro.core.heuristics import (
    AttentionPairingHeuristic,
    PairingHeuristic,
    TreePairingHeuristic,
    WordDistanceHeuristic,
)
from repro.core.index import IndexEntry, SubjectiveTagIndex
from repro.core.shards import ShardedTagIndex, shard_of
from repro.core.snapshot import (
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotNotFound,
    SnapshotVersionError,
    load_snapshot,
    save_snapshot,
)
from repro.core.pairing import (
    PairingClassifier,
    PairingInstance,
    PairingPipeline,
    default_labeling_functions,
    heuristic_labeling_function,
    instances_from_examples,
    select_attention_heads,
)
from repro.core.saccs import IndexingRound, PreparedIndex, Saccs, SaccsConfig
from repro.core.session import ConversationSession, Turn
from repro.core.tagger import SequenceTagger
from repro.core.tags import SubjectiveTag
from repro.core.training import (
    AdversarialConfig,
    TaggerTrainer,
    TaggerTrainingConfig,
    evaluate_tagger,
)

__all__ = [
    "AdversarialConfig",
    "AttentionPairingHeuristic",
    "ClassificationReport",
    "ClassifierPairer",
    "ConversationSession",
    "DialogSystem",
    "ExtractionCache",
    "ExtractionEngine",
    "ExtractionEngineConfig",
    "FakeReviewFilter",
    "FilterConfig",
    "FraudFilterConfig",
    "HeuristicPairer",
    "IRBaseline",
    "IndexEntry",
    "IndexingRound",
    "IntentRecognizer",
    "OracleExtractor",
    "Pairer",
    "PairingClassifier",
    "PairingHeuristic",
    "PairingInstance",
    "PairingPipeline",
    "ParsedUtterance",
    "PreparedIndex",
    "Saccs",
    "SaccsConfig",
    "SearchApi",
    "SequenceTagger",
    "SimBaseline",
    "SpanF1",
    "SubjectiveTag",
    "ShardedTagIndex",
    "SnapshotError",
    "SnapshotIntegrityError",
    "SnapshotNotFound",
    "SnapshotVersionError",
    "SubjectiveTagIndex",
    "TagExtractor",
    "TaggerTrainer",
    "TaggerTrainingConfig",
    "TreePairingHeuristic",
    "Turn",
    "UserProfile",
    "WordDistanceHeuristic",
    "aggregate_scores",
    "classification_report",
    "default_labeling_functions",
    "evaluate_tagger",
    "filter_and_rank",
    "heuristic_labeling_function",
    "instances_from_examples",
    "load_index",
    "personalized_rank",
    "save_index",
    "save_snapshot",
    "load_snapshot",
    "shard_of",
    "select_attention_heads",
    "span_f1",
]
