"""Multi-turn conversational sessions over SACCS.

The paper positions SACCS inside task-oriented dialog systems, where search
is rarely one-shot: users refine ("make it quick service too"), retract
("price doesn't matter actually") and re-anchor ("what about in lyon?")
across turns.  :class:`ConversationSession` keeps the evolving query state —
objective slots plus the accumulated subjective tags — and re-ranks after
every turn, optionally through a :class:`~repro.core.profiles.UserProfile`.

Ahead of extraction each turn runs through a
:class:`~repro.conversation.stage.ConversationStage` (on by default): the
utterance is routed subjective / objective / chitchat, pronouns are
resolved against the salience stack, elliptical follow-ups are rewritten
into self-contained queries, and topic shifts reset stale subjective
context.  Only ``subjective`` turns reach the neural extractor; the other
routes re-rank from accumulated state alone.  Passing ``stage=None``
disables the stage entirely (the pre-stage behaviour: every turn is
extracted verbatim), which is the baseline the equivalence tests compare
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.conversation.classify import ROUTE_CHITCHAT, ROUTE_SUBJECTIVE
from repro.conversation.stage import ConversationStage
from repro.core.extractor import TagExtractor
from repro.core.profiles import UserProfile, personalized_rank
from repro.core.saccs import Saccs
from repro.core.tags import SubjectiveTag
from repro.text.tokenize import word_tokenize

__all__ = ["Turn", "ConversationSession"]

_RESET_MARKERS = {"start over", "new search", "forget that", "reset"}
_RETRACT_MARKERS = ("doesn't matter", "does not matter", "drop the", "forget the", "never mind the")

#: sentinel distinguishing "use the default stage" from an explicit ``None``.
_DEFAULT_STAGE = object()


def _tokens_match(token: str, aspect_token: str) -> bool:
    """Whole-token match with trivial-plural tolerance (price/prices)."""
    return (
        token == aspect_token
        or token == aspect_token + "s"
        or aspect_token == token + "s"
    )


@dataclass
class Turn:
    """One exchange: what the user said and what the system answered."""

    utterance: str
    added_tags: List[SubjectiveTag]
    removed_tags: List[SubjectiveTag]
    slots: Dict[str, str]
    results: List[Tuple[str, float]]
    #: the self-contained form the ranker actually saw (== utterance when
    #: no pronoun resolution / rewriting applied).
    resolved: str = ""
    #: subjectivity route decision for this turn.
    route: str = ROUTE_SUBJECTIVE
    #: whether this turn triggered a topic-shift context reset.
    shift: bool = False


class ConversationSession:
    """Stateful refinement loop around a built :class:`Saccs` instance."""

    def __init__(
        self,
        saccs: Saccs,
        profile: Optional[UserProfile] = None,
        dimension_of=None,
        top_k: int = 10,
        stage=_DEFAULT_STAGE,
    ):
        if not isinstance(saccs.extractor, TagExtractor):
            raise TypeError("ConversationSession needs a neural TagExtractor (utterances have no gold labels)")
        self.saccs = saccs
        self.profile = profile
        #: maps a tag to its dimension name for profile weighting (optional).
        self.dimension_of = dimension_of or (lambda tag: None)
        self.top_k = top_k
        if stage is _DEFAULT_STAGE:
            stage = ConversationStage(lexicon=saccs.similarity.lexicon)
        #: the conversation stage, or ``None`` for the verbatim baseline.
        self.stage: Optional[ConversationStage] = stage
        self.active_tags: List[SubjectiveTag] = []
        self.slots: Dict[str, str] = {}
        self.turns: List[Turn] = []

    # --------------------------------------------------------------- updates

    def reset(self) -> None:
        """Clear the accumulated query state."""
        self.active_tags.clear()
        self.slots.clear()
        if self.stage is not None:
            self.stage.reset()

    def _retractions(self, utterance: str) -> List[SubjectiveTag]:
        """Tags the user asked to drop ("the price doesn't matter").

        Aspect mentions match on whole-token boundaries (with trivial-plural
        tolerance), never on substrings — "not overpriced" must not retract
        a ``price`` tag just because "price" appears inside "overpriced".
        """
        lowered = utterance.lower()
        if not any(marker in lowered for marker in _RETRACT_MARKERS):
            return []
        tokens = word_tokenize(utterance)
        removed = []
        for tag in self.active_tags:
            aspect_tokens = word_tokenize(tag.aspect)
            if not aspect_tokens:
                continue
            width = len(aspect_tokens)
            for start in range(len(tokens) - width + 1):
                if all(
                    _tokens_match(tokens[start + offset], aspect_tokens[offset])
                    for offset in range(width)
                ):
                    removed.append(tag)
                    break
        return removed

    def say(self, utterance: str) -> Turn:
        """Process one user turn and return it (with fresh results)."""
        lowered = utterance.lower()
        if any(marker in lowered for marker in _RESET_MARKERS):
            self.reset()
            turn = Turn(
                utterance, [], [], dict(self.slots), [],
                resolved=utterance, route=ROUTE_CHITCHAT,
            )
            self.turns.append(turn)
            return turn

        removed = self._retractions(utterance)
        for tag in removed:
            self.active_tags.remove(tag)

        shift = False
        if self.stage is not None:
            analysis = self.stage.analyze(utterance)
            self.slots.update(analysis.slots)
            if analysis.shift:
                # Wholesale topic change: stale subjective tags would poison
                # the new ranking.  Objective slots survive the shift.
                self.active_tags.clear()
                shift = True
            route = analysis.route
            resolved = analysis.resolved
            extract_tokens: Sequence[str] = (
                analysis.resolved_tokens if route == ROUTE_SUBJECTIVE else []
            )
        else:
            parsed = self.saccs.dialog.recognizer.parse(utterance)
            self.slots.update(parsed.slots)
            route = ROUTE_SUBJECTIVE
            resolved = utterance
            extract_tokens = parsed.tokens

        added = []
        # a retraction turn does not add its aspect back; an empty utterance
        # has nothing to extract (and some taggers choke on zero tokens).
        if not removed and extract_tokens:
            for tag in self.saccs.extractor.extract(list(extract_tokens)):
                if tag not in self.active_tags:
                    self.active_tags.append(tag)
                    added.append(tag)
        if self.profile is not None and added:
            self.profile.record_query(added, self.dimension_of)
        if self.stage is not None and added:
            self.stage.observe_tags(added)

        results = self._rank()
        if self.stage is not None:
            self.stage.observe_results(results)
        turn = Turn(
            utterance, added, removed, dict(self.slots), results,
            resolved=resolved, route=route, shift=shift,
        )
        self.turns.append(turn)
        return turn

    # --------------------------------------------------------------- ranking

    def _rank(self) -> List[Tuple[str, float]]:
        api_ids = [e.entity_id for e in self.saccs.dialog.api.search(self.slots)]
        if not self.active_tags:
            return [(entity_id, 0.0) for entity_id in api_ids[: self.top_k]]
        tag_sets = [self.saccs._tag_set(tag) for tag in self.active_tags]
        if self.profile is not None:
            dimensions = [self.dimension_of(tag) for tag in self.active_tags]
            return personalized_rank(tag_sets, dimensions, self.profile, api_ids, top_k=self.top_k)
        from repro.core.filtering import FilterConfig, filter_and_rank

        config = self.saccs.config.filter_config()
        config.top_k = self.top_k
        return filter_and_rank(api_ids, tag_sets, config)

    # ------------------------------------------------------------- inspection

    def state_summary(self) -> str:
        """One-line rendering of the accumulated query state.

        Tags and slots render in sorted order so two sessions holding the
        same state — even tags accumulated in different turn orders, or
        tags with equal index degrees — summarise to identical strings.
        When at least one turn has happened, the last turn's understanding
        (raw utterance, resolved form, route) is appended so session
        debugging shows what the ranker actually saw.
        """
        tags = ", ".join(sorted(t.text for t in self.active_tags)) or "(none)"
        slots = ", ".join(f"{k}={v}" for k, v in sorted(self.slots.items())) or "(none)"
        summary = f"tags: {tags} | slots: {slots}"
        if self.turns:
            last = self.turns[-1]
            turn_fields = {
                "raw": last.utterance,
                "resolved": last.resolved,
                "route": last.route,
            }
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(turn_fields.items()))
            summary = f"{summary} | turn: {rendered}"
        return summary
