"""Multi-turn conversational sessions over SACCS.

The paper positions SACCS inside task-oriented dialog systems, where search
is rarely one-shot: users refine ("make it quick service too"), retract
("price doesn't matter actually") and re-anchor ("what about in lyon?")
across turns.  :class:`ConversationSession` keeps the evolving query state —
objective slots plus the accumulated subjective tags — and re-ranks after
every turn, optionally through a :class:`~repro.core.profiles.UserProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.extractor import TagExtractor
from repro.core.profiles import UserProfile, personalized_rank
from repro.core.saccs import Saccs
from repro.core.tags import SubjectiveTag
from repro.text.tokenize import word_tokenize

__all__ = ["Turn", "ConversationSession"]

_RESET_MARKERS = {"start over", "new search", "forget that", "reset"}
_RETRACT_MARKERS = ("doesn't matter", "does not matter", "drop the", "forget the", "never mind the")


@dataclass
class Turn:
    """One exchange: what the user said and what the system answered."""

    utterance: str
    added_tags: List[SubjectiveTag]
    removed_tags: List[SubjectiveTag]
    slots: Dict[str, str]
    results: List[Tuple[str, float]]


class ConversationSession:
    """Stateful refinement loop around a built :class:`Saccs` instance."""

    def __init__(
        self,
        saccs: Saccs,
        profile: Optional[UserProfile] = None,
        dimension_of=None,
        top_k: int = 10,
    ):
        if not isinstance(saccs.extractor, TagExtractor):
            raise TypeError("ConversationSession needs a neural TagExtractor (utterances have no gold labels)")
        self.saccs = saccs
        self.profile = profile
        #: maps a tag to its dimension name for profile weighting (optional).
        self.dimension_of = dimension_of or (lambda tag: None)
        self.top_k = top_k
        self.active_tags: List[SubjectiveTag] = []
        self.slots: Dict[str, str] = {}
        self.turns: List[Turn] = []

    # --------------------------------------------------------------- updates

    def reset(self) -> None:
        """Clear the accumulated query state."""
        self.active_tags.clear()
        self.slots.clear()

    def _retractions(self, utterance: str) -> List[SubjectiveTag]:
        """Tags the user asked to drop ("the price doesn't matter")."""
        lowered = utterance.lower()
        if not any(marker in lowered for marker in _RETRACT_MARKERS):
            return []
        removed = []
        for tag in self.active_tags:
            if tag.aspect in lowered:
                removed.append(tag)
        return removed

    def say(self, utterance: str) -> Turn:
        """Process one user turn and return it (with fresh results)."""
        lowered = utterance.lower()
        if any(marker in lowered for marker in _RESET_MARKERS):
            self.reset()
            turn = Turn(utterance, [], [], dict(self.slots), [])
            self.turns.append(turn)
            return turn

        removed = self._retractions(utterance)
        for tag in removed:
            self.active_tags.remove(tag)

        parsed = self.saccs.dialog.recognizer.parse(utterance)
        self.slots.update(parsed.slots)
        added = []
        # a retraction turn does not add its aspect back; an empty utterance
        # has nothing to extract (and some taggers choke on zero tokens).
        if not removed and parsed.tokens:
            for tag in self.saccs.extractor.extract(parsed.tokens):
                if tag not in self.active_tags:
                    self.active_tags.append(tag)
                    added.append(tag)
        if self.profile is not None and added:
            self.profile.record_query(added, self.dimension_of)

        results = self._rank()
        turn = Turn(utterance, added, removed, dict(self.slots), results)
        self.turns.append(turn)
        return turn

    # --------------------------------------------------------------- ranking

    def _rank(self) -> List[Tuple[str, float]]:
        api_ids = [e.entity_id for e in self.saccs.dialog.api.search(self.slots)]
        if not self.active_tags:
            return [(entity_id, 0.0) for entity_id in api_ids[: self.top_k]]
        tag_sets = [self.saccs._tag_set(tag) for tag in self.active_tags]
        if self.profile is not None:
            dimensions = [self.dimension_of(tag) for tag in self.active_tags]
            return personalized_rank(tag_sets, dimensions, self.profile, api_ids, top_k=self.top_k)
        from repro.core.filtering import FilterConfig, filter_and_rank

        config = self.saccs.config.filter_config()
        config.top_k = self.top_k
        return filter_and_rank(api_ids, tag_sets, config)

    # ------------------------------------------------------------- inspection

    def state_summary(self) -> str:
        """One-line rendering of the accumulated query state.

        Tags and slots render in sorted order so two sessions holding the
        same state — even tags accumulated in different turn orders, or
        tags with equal index degrees — summarise to identical strings.
        """
        tags = ", ".join(sorted(t.text for t in self.active_tags)) or "(none)"
        slots = ", ".join(f"{k}={v}" for k, v in sorted(self.slots.items())) or "(none)"
        return f"tags: {tags} | slots: {slots}"
