"""The two novel pairing heuristics of Section 5.1.

Given a sentence plus its aspect spans and opinion spans, a heuristic
proposes (aspect_span, opinion_span) pairs:

* **Tree heuristic** — greedily link each source span to the *closest*
  target span in the constituency parse tree.  Run in both directions
  (aspects→opinions and opinions→aspects), since one aspect can carry many
  opinions and vice versa.
* **Attention heuristic** — read one BERT attention head ``(layer, head)``
  and link each source span to the target span it attends to most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bert.encoder import BertWordEncoder
from repro.data.schema import Span
from repro.text.parser import ChunkParser

__all__ = ["PairingHeuristic", "TreePairingHeuristic", "AttentionPairingHeuristic", "WordDistanceHeuristic"]

Pair = Tuple[Span, Span]


class PairingHeuristic:
    """Interface: propose pairs for (tokens, aspect_spans, opinion_spans)."""

    name: str = "heuristic"

    def pairs(
        self,
        tokens: Sequence[str],
        aspect_spans: Sequence[Span],
        opinion_spans: Sequence[Span],
    ) -> Set[Pair]:
        raise NotImplementedError


def _span_center(span: Span) -> float:
    return (span[0] + span[1] - 1) / 2.0


class WordDistanceHeuristic(PairingHeuristic):
    """The naive baseline the paper's heuristics improve upon: each source
    span links to the target span closest in raw token distance."""

    def __init__(self, direction: str = "aspects"):
        if direction not in ("aspects", "opinions"):
            raise ValueError("direction must be 'aspects' or 'opinions'")
        self.direction = direction
        self.name = f"word_distance_{direction}"

    def pairs(self, tokens, aspect_spans, opinion_spans):
        if not aspect_spans or not opinion_spans:
            return set()
        out: Set[Pair] = set()
        sources, targets = (
            (aspect_spans, opinion_spans) if self.direction == "aspects" else (opinion_spans, aspect_spans)
        )
        for source in sources:
            best = min(targets, key=lambda t: (abs(_span_center(t) - _span_center(source)), t))
            pair = (source, best) if self.direction == "aspects" else (best, source)
            out.add(pair)
        return out


class TreePairingHeuristic(PairingHeuristic):
    """Closest-in-parse-tree pairing (ties broken by word distance)."""

    def __init__(self, parser: ChunkParser, direction: str = "aspects"):
        if direction not in ("aspects", "opinions"):
            raise ValueError("direction must be 'aspects' or 'opinions'")
        self.parser = parser
        self.direction = direction
        self.name = f"tree_{'as' if direction == 'aspects' else 'op'}"

    def _span_distance(self, tree, span_a: Span, span_b: Span) -> float:
        # Distance between the head tokens (last token of each span: the
        # noun of an NP, the adjective of an ADJP).
        return tree.leaf_distance(span_a[1] - 1, span_b[1] - 1)

    def pairs(self, tokens, aspect_spans, opinion_spans):
        if not aspect_spans or not opinion_spans:
            return set()
        tree = self.parser.parse(list(tokens))
        out: Set[Pair] = set()
        sources, targets = (
            (aspect_spans, opinion_spans) if self.direction == "aspects" else (opinion_spans, aspect_spans)
        )
        for source in sources:
            best = min(
                targets,
                key=lambda t: (
                    self._span_distance(tree, source, t),
                    abs(_span_center(t) - _span_center(source)),
                    t,
                ),
            )
            pair = (source, best) if self.direction == "aspects" else (best, source)
            out.add(pair)
        return out


class AttentionPairingHeuristic(PairingHeuristic):
    """BERT attention-head pairing (Figure 5).

    The attention mass a source span assigns to each target span is the mean
    attention from the source's tokens to the target's tokens at one
    ``(layer, head)`` coordinate; each source links to its argmax target.
    """

    def __init__(
        self,
        encoder: BertWordEncoder,
        layer: int,
        head: int,
        direction: str = "aspects",
        margin: float = 1.0,
    ):
        if direction not in ("aspects", "opinions"):
            raise ValueError("direction must be 'aspects' or 'opinions'")
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        self.encoder = encoder
        self.layer = layer
        self.head = head
        self.direction = direction
        #: confidence gate: with several targets, link only when the best
        #: target's attention mass beats the runner-up by this factor.
        #: Makes the labeling function conservative — high precision, lower
        #: recall, the LF profile the paper reports.
        self.margin = margin
        self.name = f"bert_{layer}:{head}"

    def _attention_mass(self, attention: np.ndarray, source: Span, target: Span) -> float:
        block = attention[source[0] : source[1], target[0] : target[1]]
        return float(block.mean())

    def pairs(self, tokens, aspect_spans, opinion_spans):
        if not aspect_spans or not opinion_spans:
            return set()
        maps = self.encoder.attention(list(tokens))  # (L, H, T, T)
        attention = maps[self.layer, self.head]
        out: Set[Pair] = set()
        sources, targets = (
            (aspect_spans, opinion_spans) if self.direction == "aspects" else (opinion_spans, aspect_spans)
        )
        for source in sources:
            masses = sorted(
                ((self._attention_mass(attention, source, t), t) for t in targets),
                reverse=True,
            )
            best_mass, best = masses[0]
            if len(masses) > 1 and best_mass < self.margin * masses[1][0]:
                continue  # not confident enough: abstain from this source
            pair = (source, best) if self.direction == "aspects" else (best, source)
            out.add(pair)
        return out
