"""Index snapshot persistence: per-shard ``.npz`` + hashed JSON manifest.

A snapshot is a directory holding one ``shard-NNN.npz`` per entity shard
(the CSR occurrence arrays, vocabulary, similarity and degree-of-truth
matrices from :meth:`SubjectiveTagIndex.snapshot_arrays`) and a
``manifest.json`` recording the index configuration, the indexed tag list,
and a sha256 per file — the same content-hash keying the PR-3
``ExtractionCache`` uses for review extractions, extended to index records.
``repro serve --snapshot-dir`` warm-starts from one in seconds instead of
re-extracting the corpus.

Failure policy is *fail-safe, never fail-open*: every writer goes through
temp-file + ``os.replace`` with the manifest written last, so a torn save
leaves either the previous consistent snapshot or a hash mismatch; loads
verify content hashes before touching ``np.load`` and raise a typed
:class:`SnapshotError` (callers fall back to a cold build) rather than ever
serving from a corrupt or version-skewed snapshot.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.core.index import SubjectiveTagIndex
from repro.core.shards import ShardedTagIndex, shard_of
from repro.core.tags import SubjectiveTag
from repro.text.similarity import ConceptualSimilarity

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "SnapshotError",
    "SnapshotNotFound",
    "SnapshotIntegrityError",
    "SnapshotVersionError",
    "save_snapshot",
    "load_snapshot",
]

#: v1 is the JSON single-index format of :mod:`repro.core.index_io`.
FORMAT_VERSION = 2

MANIFEST_NAME = "manifest.json"

_REQUIRED_ARRAYS = (
    "vocab_aspects",
    "vocab_opinions",
    "index_aspects",
    "index_opinions",
    "entity_order",
    "entity_review_counts",
    "occ_ids",
    "review_indptr",
    "review_entity",
    "sims",
    "degrees",
)


class SnapshotError(RuntimeError):
    """Base for every refuse-to-load condition (callers cold-build instead)."""


class SnapshotNotFound(SnapshotError):
    """No manifest in the snapshot directory."""


class SnapshotIntegrityError(SnapshotError):
    """Content hash mismatch, truncated/corrupt file, or torn save."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by an incompatible format version."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _write_atomic(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def _manifest_hash(manifest: Dict[str, object]) -> str:
    payload = {key: manifest[key] for key in sorted(manifest) if key != "snapshot_sha256"}
    return _sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))


def save_snapshot(
    index: Union[SubjectiveTagIndex, ShardedTagIndex],
    directory: Union[str, Path],
) -> Dict[str, object]:
    """Persist ``index`` under ``directory`` and return the manifest.

    Shard files land first (each via temp + ``os.replace``), the manifest —
    whose hashes bless them — last, so a reader never sees new files blessed
    by an old manifest as valid.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sharded = isinstance(index, ShardedTagIndex)
    shards = index.shards if sharded else [index]
    files: Dict[str, Dict[str, object]] = {}
    for shard_id, shard in enumerate(shards):
        arrays = shard.snapshot_arrays()
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        data = buffer.getvalue()
        name = f"shard-{shard_id:03d}.npz"
        _write_atomic(directory / name, data)
        files[name] = {"sha256": _sha256(data), "bytes": len(data)}
    manifest: Dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "kind": "sharded" if sharded else "single",
        "num_shards": len(shards),
        "config": {
            "theta_index": index.theta_index,
            "normalize_degrees": shards[0].normalize_degrees,
            "review_count_mode": index.review_count_mode,
            "theta_mode": index.theta_mode,
            "dynamic_margin": shards[0].dynamic_margin,
        },
        "shared_review_max": shards[0].shared_review_max if sharded else None,
        "index_tags": [[tag.aspect, tag.opinion] for tag in index.tags],
        "files": files,
    }
    manifest["snapshot_sha256"] = _manifest_hash(manifest)
    _write_atomic(
        directory / MANIFEST_NAME,
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
    )
    return manifest


def _load_shard_arrays(directory: Path, name: str, expected_sha: str) -> Dict[str, np.ndarray]:
    path = directory / name
    if not path.exists():
        raise SnapshotIntegrityError(f"snapshot file missing: {name}")
    data = path.read_bytes()
    if _sha256(data) != expected_sha:
        raise SnapshotIntegrityError(f"content hash mismatch for {name}")
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            arrays = {key: npz[key] for key in npz.files}
    except Exception as exc:
        raise SnapshotIntegrityError(f"unreadable snapshot file {name}: {exc}") from exc
    missing = [key for key in _REQUIRED_ARRAYS if key not in arrays]
    if missing:
        raise SnapshotIntegrityError(f"snapshot file {name} lacks arrays: {missing}")
    return arrays


def load_snapshot(
    directory: Union[str, Path],
    similarity: ConceptualSimilarity,
    lookup_workers: int = 0,
) -> Union[SubjectiveTagIndex, ShardedTagIndex]:
    """Rebuild the index persisted under ``directory``.

    Raises a :class:`SnapshotError` subclass on any inconsistency; callers
    catch it and fall back to a cold build.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise SnapshotNotFound(f"no {MANIFEST_NAME} under {directory}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise SnapshotIntegrityError(f"manifest is not valid JSON: {exc}") from exc
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"snapshot format_version {version!r} != supported {FORMAT_VERSION}"
        )
    if _manifest_hash(manifest) != manifest.get("snapshot_sha256"):
        raise SnapshotIntegrityError("manifest hash mismatch (torn or edited snapshot)")
    config = manifest.get("config") or {}
    files = manifest.get("files") or {}
    num_shards = int(manifest.get("num_shards", 0))
    if num_shards < 1 or len(files) != num_shards:
        raise SnapshotIntegrityError(
            f"manifest names {len(files)} files for {num_shards} shards"
        )
    expected_tags = [
        SubjectiveTag(aspect=str(aspect), opinion=str(opinion))
        for aspect, opinion in manifest.get("index_tags", [])
    ]
    shared_review_max = manifest.get("shared_review_max")
    kwargs = {
        "theta_index": float(config.get("theta_index", 0.70)),
        "normalize_degrees": bool(config.get("normalize_degrees", True)),
        "review_count_mode": str(config.get("review_count_mode", "matched")),
        "theta_mode": str(config.get("theta_mode", "static")),
        "dynamic_margin": float(config.get("dynamic_margin", 0.08)),
    }
    shards: List[SubjectiveTagIndex] = []
    for name in sorted(files):
        meta = files[name]
        arrays = _load_shard_arrays(directory, name, str(meta.get("sha256")))
        try:
            shard = SubjectiveTagIndex.from_snapshot_arrays(
                similarity,
                arrays,
                shared_review_max=shared_review_max,
                **kwargs,
            )
        except ValueError as exc:
            raise SnapshotIntegrityError(f"inconsistent arrays in {name}: {exc}") from exc
        if shard.tags != expected_tags:
            raise SnapshotIntegrityError(
                f"{name} indexes a different tag list than the manifest"
            )
        shards.append(shard)
    if manifest.get("kind") == "single":
        if len(shards) != 1:
            raise SnapshotIntegrityError("single-index snapshot with multiple shards")
        single = shards[0]
        single.shared_review_max = None
        return single
    for shard_id, shard in enumerate(shards):
        for entity_id in shard.entity_order:
            if shard_of(entity_id, num_shards) != shard_id:
                raise SnapshotIntegrityError(
                    f"entity {entity_id!r} stored in shard {shard_id} but routes "
                    f"to shard {shard_of(entity_id, num_shards)}"
                )
    wrapper = ShardedTagIndex(
        similarity,
        num_shards=num_shards,
        lookup_workers=lookup_workers,
        **kwargs,
    )
    wrapper.shards = shards
    wrapper._tag_order = {tag: position for position, tag in enumerate(expected_tags)}
    wrapper._entity_review_counts = {
        entity_id: count
        for shard in shards
        for entity_id, count in shard._entity_review_counts.items()
    }
    wrapper._max_reviews = max(wrapper._entity_review_counts.values(), default=0)
    return wrapper
