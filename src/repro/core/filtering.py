"""Filtering & ranking of search results by subjective tags (Algorithm 1).

Given the objective search results ``S_api`` and, per subjective tag ``t``
in the utterance, an entity→score set ``S_t`` (from the index, exact or
similarity-combined), the algorithm intersects the sets and ranks the
surviving entities by their aggregated degrees of truth (Section 3.3:
arithmetic mean across tags, which the authors found to work best; product
and min are provided for the ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FilterConfig", "aggregate_scores", "filter_and_rank"]

_AGGREGATORS: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda scores: float(np.mean(scores)),
    "product": lambda scores: float(np.prod(scores)),
    "min": lambda scores: float(np.min(scores)),
}

#: row-wise variants over an (entities × tags) score matrix — the batched
#: path aggregates every entity in one numpy reduction instead of one
#: Python call per entity.
_MATRIX_AGGREGATORS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "mean": lambda matrix: matrix.mean(axis=1),
    "product": lambda matrix: matrix.prod(axis=1),
    "min": lambda matrix: matrix.min(axis=1),
}


@dataclass
class FilterConfig:
    """Ranking knobs.

    ``mode`` controls the set combination of Algorithm 1 line 11:

    * ``"soft"`` (default) — an entity absent from some tag's set
      contributes a degree of 0 for that tag and is ranked by the aggregate
      over *all* query tags.  An entity matching no tag at all is dropped.
      This is the natural reading once scores are aggregated by mean: being
      unmentioned for one tag lowers the aggregate instead of annihilating
      an otherwise excellent candidate.
    * ``"strict"`` — the literal set intersection: only entities present in
      every tag's set survive (kept for the ablation; with many query tags
      it empties quickly).
    """

    aggregation: str = "mean"
    top_k: Optional[int] = 10
    mode: str = "soft"
    #: strict mode only: append near-miss entities (present in some tag
    #: sets) after the full intersection instead of returning a short list.
    backfill: bool = True

    def __post_init__(self):
        if self.aggregation not in _AGGREGATORS:
            raise ValueError(f"unknown aggregation {self.aggregation!r}; options: {sorted(_AGGREGATORS)}")
        if self.mode not in ("soft", "strict"):
            raise ValueError("mode must be 'soft' or 'strict'")


def aggregate_scores(per_tag_scores: Sequence[float], aggregation: str = "mean") -> float:
    """Combine one entity's degrees of truth across tags (Section 3.3)."""
    if not per_tag_scores:
        raise ValueError("no scores to aggregate")
    return _AGGREGATORS[aggregation](per_tag_scores)


def filter_and_rank(
    api_entity_ids: Sequence[str],
    tag_sets: Sequence[Mapping[str, float]],
    config: Optional[FilterConfig] = None,
) -> List[Tuple[str, float]]:
    """Algorithm 1 lines 11–12: intersect and rank.

    Parameters
    ----------
    api_entity_ids:
        ``S_api`` — entities surviving the objective filters, in API order.
    tag_sets:
        one entity→degree mapping per subjective tag in the utterance.

    Returns
    -------
    ``(entity_id, aggregated_score)`` pairs, best first.
    """
    config = config or FilterConfig()
    if not tag_sets:
        # No subjective signal: the API order stands.
        ranked = [(entity_id, 0.0) for entity_id in api_entity_ids]
        return ranked[: config.top_k] if config.top_k else ranked

    if config.mode == "soft":
        result = _soft_rank(api_entity_ids, tag_sets, config)
    else:
        result = _strict_rank(api_entity_ids, tag_sets, config)
    return result[: config.top_k] if config.top_k else result


def _soft_rank(
    api_entity_ids: Sequence[str],
    tag_sets: Sequence[Mapping[str, float]],
    config: FilterConfig,
) -> List[Tuple[str, float]]:
    # Batched scoring: one (entities × tags) matrix, one reduction — rather
    # than a per-entity Python aggregation loop.
    ids = list(api_entity_ids)
    if not ids:
        return []
    matrix = np.empty((len(ids), len(tag_sets)))
    for j, tag_set in enumerate(tag_sets):
        matrix[:, j] = [tag_set.get(entity_id, 0.0) for entity_id in ids]
    keep = (matrix > 0).any(axis=1)
    if not keep.any():
        # No entity matched any subjective tag: fall back to the API order
        # rather than answering with nothing.
        return [(entity_id, 0.0) for entity_id in ids]
    aggregated = _MATRIX_AGGREGATORS[config.aggregation](matrix)
    scored = [
        (entity_id, float(score))
        for entity_id, score, kept in zip(ids, aggregated, keep)
        if kept
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored


def _strict_rank(
    api_entity_ids: Sequence[str],
    tag_sets: Sequence[Mapping[str, float]],
    config: FilterConfig,
) -> List[Tuple[str, float]]:
    strict: List[Tuple[str, float]] = []
    partial: List[Tuple[int, float, str]] = []
    for entity_id in api_entity_ids:
        scores = [tag_set[entity_id] for tag_set in tag_sets if entity_id in tag_set]
        if len(scores) == len(tag_sets):
            strict.append((entity_id, aggregate_scores(scores, config.aggregation)))
        elif scores:
            partial.append((len(scores), aggregate_scores(scores, config.aggregation), entity_id))
    strict.sort(key=lambda pair: (-pair[1], pair[0]))
    result = strict
    if config.backfill:
        partial.sort(key=lambda triple: (-triple[0], -triple[1], triple[2]))
        result = strict + [(entity_id, score) for _, score, entity_id in partial]
    return result
