"""Extraction-engine benchmark (``repro bench-extract``).

Measures the end-to-end ingest pass — the offline budget of Figure 2 —
under four extraction strategies on one seeded corpus with one trained
neural extractor:

* ``sequential`` — the original one-review-at-a-time loop (the oracle);
* ``bucketed`` — corpus-wide length buckets, batch Viterbi, serial pairing;
* ``bucketed_parallel`` — bucketed plus the pairing worker pool;
* ``warm_cache`` — a second bucketed+parallel pass over the *unchanged*
  corpus through the content-hash extraction cache (the incremental
  reingest path; expects ~100% hits).

Every variant's extracted tags are checked **identical** per entity/review
before speedups are reported, and the record embeds the engine's stage
spans (encode / decode / pair / register) so the win is attributable.
``benchmarks/check_bench.py`` guards the recorded speedups against
regressions in the tier-1 flow.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.extraction_engine import ExtractionEngine
from repro.core.extractor import TagExtractor
from repro.core.heuristics import TreePairingHeuristic
from repro.core.saccs import Saccs, SaccsConfig
from repro.core.tags import SubjectiveTag
from repro.data import WorldConfig, build_tagging_dataset, build_world
from repro.text import ChunkParser, ConceptualSimilarity, PosLexicon, restaurant_lexicon
from repro.utils.env import environment_info
from repro.utils.timing import Timer

__all__ = ["build_bench_extractor", "run_extraction_benchmark", "write_extract_record"]


def build_bench_extractor(seed: int = 21, train_epochs: int = 2) -> TagExtractor:
    """The neural extractor the bench drives: quick BERT + briefly trained
    tagger + tree-heuristic pairer.

    The quick pre-train plan is artifact-cached per machine; a couple of
    training epochs give the tagger realistic span density (so the pairing
    stage does real work) without burning bench time on model quality.
    """
    from repro.bert import PretrainPlan, pretrained_encoder
    from repro.core.extractor import HeuristicPairer
    from repro.core.tagger import SequenceTagger
    from repro.core.training import TaggerTrainer, TaggerTrainingConfig

    encoder = pretrained_encoder("restaurants", plan=PretrainPlan.quick(seed=seed))
    tagger = SequenceTagger(encoder, np.random.default_rng(0))
    if train_epochs > 0:
        dataset = build_tagging_dataset("S1", scale=0.06, seed=4)
        TaggerTrainer(tagger, TaggerTrainingConfig(epochs=train_epochs)).fit(dataset.train)
    parser = ChunkParser(PosLexicon(restaurant_lexicon()))
    pairer = HeuristicPairer([TreePairingHeuristic(parser, direction="opinions")])
    return TagExtractor(tagger, pairer)


def _make_saccs(world, extractor: TagExtractor, config: SaccsConfig) -> Saccs:
    return Saccs(
        world.entities,
        world.reviews,
        extractor,
        ConceptualSimilarity(restaurant_lexicon()),
        config,
    )


def _extracted_tags(saccs: Saccs) -> Dict[str, List[Tuple[SubjectiveTag, ...]]]:
    """Per-entity per-review extracted tag tuples (the equivalence witness)."""
    return {
        entity_id: [tuple(tags) for tags in per_review]
        for entity_id, per_review in saccs.index._entity_tags.items()
    }


def run_extraction_benchmark(
    seed: int = 7,
    entities: int = 60,
    mean_reviews: float = 10.0,
    batch_sentences: int = 128,
    pairing_workers: int = 4,
    train_epochs: int = 2,
    progress=None,
) -> Dict[str, object]:
    """Run the four-variant sweep and return the ``BENCH_extract`` payload."""

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    say("building world and extractor (pre-trained encoder is cached per machine) ...")
    world = build_world(
        WorldConfig.small(seed=seed, num_entities=entities, mean_reviews=mean_reviews)
    )
    extractor = build_bench_extractor(train_epochs=train_epochs)
    num_reviews = sum(len(reviews) for reviews in world.reviews.values())
    num_sentences = sum(
        len(review.sentences) for reviews in world.reviews.values() for review in reviews
    )

    variant_configs = {
        "sequential": SaccsConfig(extraction_mode="sequential"),
        "bucketed": SaccsConfig(
            extraction_batch_sentences=batch_sentences, extraction_workers=0
        ),
        "bucketed_parallel": SaccsConfig(
            extraction_batch_sentences=batch_sentences, extraction_workers=pairing_workers
        ),
    }
    variants: Dict[str, Dict[str, object]] = {}
    witnesses: Dict[str, Dict[str, List[Tuple[SubjectiveTag, ...]]]] = {}
    warm_engine: Optional[ExtractionEngine] = None
    for name, config in variant_configs.items():
        say(f"variant: {name} ...")
        saccs = _make_saccs(world, extractor, config)
        with Timer() as timer:
            saccs.ingest_reviews()
        variants[name] = {
            "ingest_seconds": timer.elapsed,
            "stages": saccs.extraction_engine.timings.as_dict(),
            "cache": saccs.extraction_engine.cache_stats(),
        }
        witnesses[name] = _extracted_tags(saccs)
        if name == "bucketed_parallel":
            warm_engine = saccs.extraction_engine

    say("variant: warm_cache (unchanged-corpus reingest) ...")
    assert warm_engine is not None
    warm_engine.timings.reset()
    hits_before, misses_before = warm_engine.cache.hits, warm_engine.cache.misses
    warm_saccs = _make_saccs(
        world, extractor, variant_configs["bucketed_parallel"]
    )
    warm_saccs.extraction_engine = warm_engine  # inherit the populated cache
    with Timer() as timer:
        warm_saccs.ingest_reviews()
    warm_hits = warm_engine.cache.hits - hits_before
    warm_misses = warm_engine.cache.misses - misses_before
    warm_total = warm_hits + warm_misses
    variants["warm_cache"] = {
        "ingest_seconds": timer.elapsed,
        "stages": warm_engine.timings.as_dict(),
        "cache": {
            "enabled": True,
            "entries": len(warm_engine.cache),
            "hits": warm_hits,
            "misses": warm_misses,
            "hit_ratio": warm_hits / warm_total if warm_total else 0.0,
        },
    }
    witnesses["warm_cache"] = _extracted_tags(warm_saccs)

    oracle = witnesses["sequential"]
    equivalent = all(witnesses[name] == oracle for name in witnesses)
    if not equivalent:
        raise AssertionError(
            "bucketed/parallel/cached extraction diverged from the sequential "
            "oracle — refusing to write a benchmark record for broken output"
        )

    baseline = variants["sequential"]["ingest_seconds"]
    speedup = {
        name: baseline / variants[name]["ingest_seconds"]
        for name in ("bucketed", "bucketed_parallel", "warm_cache")
    }
    return {
        "seed": seed,
        "workload": {
            "entities": entities,
            "mean_reviews_per_entity": mean_reviews,
            "reviews": num_reviews,
            "sentences": num_sentences,
            "train_epochs": train_epochs,
        },
        "config": {
            "batch_sentences": batch_sentences,
            "pairing_workers": pairing_workers,
        },
        "variants": variants,
        "summary": {
            "sequential_seconds": baseline,
            "speedup": speedup,
            "warm_cache_hit_ratio": variants["warm_cache"]["cache"]["hit_ratio"],
        },
        "equivalent": equivalent,
        "environment": environment_info(),
    }


def write_extract_record(payload: Dict[str, object], output: Optional[str] = None) -> Path:
    """Persist the payload as ``BENCH_extract.json`` (same contract as the
    benchmark harness: ``REPRO_BENCH_OUTPUT_DIR`` overrides the directory)."""
    if output is not None:
        path = Path(output)
    else:
        out_dir = Path(os.environ.get("REPRO_BENCH_OUTPUT_DIR", "."))
        path = out_dir / "BENCH_extract.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
