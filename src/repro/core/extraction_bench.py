"""Extraction-engine benchmark (``repro bench-extract``).

Measures the end-to-end ingest pass — the offline budget of Figure 2 —
under four extraction strategies on one seeded corpus with one trained
neural extractor:

* ``sequential`` — the original one-review-at-a-time loop (the oracle);
* ``bucketed`` — corpus-wide length buckets, batch Viterbi, serial pairing;
* ``bucketed_parallel`` — bucketed plus the pairing worker pool;
* ``warm_cache`` — a second bucketed+parallel pass over the *unchanged*
  corpus through the content-hash extraction cache (the incremental
  reingest path; expects ~100% hits).

A separate *encode* section measures just the encode stage (tokenise →
BERT → BiLSTM → projection) per precision over the same bucketed sentence
stream: the autograd tape forward (the PR-5 baseline) against the fused
tape-free path at float64 / float32 / int8, plus the equivalence-tolerance
report of each precision against the float64 tape oracle.  Full bucketed
ingests at float32 and int8 round out the tag-identity witness.

Every variant's extracted tags are checked **identical** per entity/review
before speedups are reported, and the record embeds the engine's stage
spans (encode / decode / pair / register) so the win is attributable.
``benchmarks/check_bench.py`` guards the recorded speedups against
regressions in the tier-1 flow — including a 3.0 floor on the
``encode_speedup`` cells.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.extraction_engine import ExtractionEngine
from repro.core.extractor import TagExtractor
from repro.core.heuristics import TreePairingHeuristic
from repro.core.saccs import Saccs, SaccsConfig
from repro.core.tags import SubjectiveTag
from repro.data import WorldConfig, build_tagging_dataset, build_world
from repro.text import ChunkParser, ConceptualSimilarity, PosLexicon, restaurant_lexicon
from repro.utils.env import environment_info
from repro.utils.timing import Timer

__all__ = ["build_bench_extractor", "run_extraction_benchmark", "write_extract_record"]


def build_bench_extractor(seed: int = 21, train_epochs: int = 2) -> TagExtractor:
    """The neural extractor the bench drives: quick BERT + briefly trained
    tagger + tree-heuristic pairer.

    The quick pre-train plan is artifact-cached per machine; a couple of
    training epochs give the tagger realistic span density (so the pairing
    stage does real work) without burning bench time on model quality.
    """
    from repro.bert import PretrainPlan, pretrained_encoder
    from repro.core.extractor import HeuristicPairer
    from repro.core.tagger import SequenceTagger
    from repro.core.training import TaggerTrainer, TaggerTrainingConfig

    encoder = pretrained_encoder("restaurants", plan=PretrainPlan.quick(seed=seed))
    tagger = SequenceTagger(encoder, np.random.default_rng(0))
    if train_epochs > 0:
        dataset = build_tagging_dataset("S1", scale=0.06, seed=4)
        TaggerTrainer(tagger, TaggerTrainingConfig(epochs=train_epochs)).fit(dataset.train)
    parser = ChunkParser(PosLexicon(restaurant_lexicon()))
    pairer = HeuristicPairer([TreePairingHeuristic(parser, direction="opinions")])
    return TagExtractor(tagger, pairer)


def _make_saccs(world, extractor: TagExtractor, config: SaccsConfig) -> Saccs:
    return Saccs(
        world.entities,
        world.reviews,
        extractor,
        ConceptualSimilarity(restaurant_lexicon()),
        config,
    )


def _extracted_tags(saccs: Saccs) -> Dict[str, List[Tuple[SubjectiveTag, ...]]]:
    """Per-entity per-review extracted tag tuples (the equivalence witness)."""
    return {
        entity_id: [tuple(tags) for tags in per_review]
        for entity_id, per_review in saccs.index._entity_tags.items()
    }


def _encode_benchmark(
    extractor: TagExtractor,
    world,
    batch_sentences: int,
) -> Dict[str, object]:
    """Per-precision encode-stage cells over the bucketed sentence stream.

    Times exactly what the engine's ``encode`` span covers — tokenisation,
    batching, and the BERT→BiLSTM→projection forward — for the autograd
    tape path (``tape_float64``, the PR-5 baseline) and the fused
    tape-free path at every precision.  Fused exports happen before the
    timed loop: the steady state of ingest exports once per weights
    version, so export cost is not part of the per-bucket encode budget.
    """
    from repro.nn.infer import PRECISIONS, equivalence_report
    from repro.nn.tensor import no_grad

    tagger = extractor.tagger
    tagger.eval()
    sentences = [
        list(sentence.tokens)
        for reviews in world.reviews.values()
        for review in reviews
        for sentence in review.sentences
    ]
    order = sorted(range(len(sentences)), key=lambda i: len(sentences[i]))
    buckets = [
        [sentences[i] for i in order[start : start + batch_sentences]]
        for start in range(0, len(order), batch_sentences)
    ]

    seconds: Dict[str, float] = {}
    with Timer() as timer:
        for bucket in buckets:
            with no_grad():
                tagger.emissions(bucket)
    seconds["tape_float64"] = timer.elapsed

    for precision in PRECISIONS:
        model = tagger.inference_model(precision)
        with Timer() as timer:
            for bucket in buckets:
                model.emissions(tagger.encoder.batch(bucket))
        seconds[precision] = timer.elapsed

    # Tolerance report on the longest-sentence bucket (buckets are length
    # sorted): deepest recurrence and most accumulation steps, so it is the
    # worst case for emission-score error against the tape oracle.
    probe = buckets[-1]
    equivalence = {
        precision: equivalence_report(tagger, probe, precision).as_dict()
        for precision in PRECISIONS
    }
    return {
        "sentences": len(sentences),
        "buckets": len(buckets),
        "seconds": seconds,
        # the guarded cells: fused reduced-precision encode vs the tape
        # baseline (check_bench holds these to the 3.0 encode floor).
        "encode_speedup": {
            "float32": seconds["tape_float64"] / seconds["float32"],
            "int8": seconds["tape_float64"] / seconds["int8"],
        },
        # bitwise-identical fused float64 vs tape: generic 1.0 floor.
        "fused_float64_speedup": seconds["tape_float64"] / seconds["float64"],
        "equivalence": equivalence,
    }


def run_extraction_benchmark(
    seed: int = 7,
    entities: int = 60,
    mean_reviews: float = 10.0,
    batch_sentences: int = 128,
    pairing_workers: int = 4,
    train_epochs: int = 2,
    progress=None,
) -> Dict[str, object]:
    """Run the four-variant sweep and return the ``BENCH_extract`` payload."""

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    say("building world and extractor (pre-trained encoder is cached per machine) ...")
    world = build_world(
        WorldConfig.small(seed=seed, num_entities=entities, mean_reviews=mean_reviews)
    )
    extractor = build_bench_extractor(train_epochs=train_epochs)
    num_reviews = sum(len(reviews) for reviews in world.reviews.values())
    num_sentences = sum(
        len(review.sentences) for reviews in world.reviews.values() for review in reviews
    )

    variant_configs = {
        "sequential": SaccsConfig(extraction_mode="sequential"),
        "bucketed": SaccsConfig(
            extraction_batch_sentences=batch_sentences, extraction_workers=0
        ),
        "bucketed_parallel": SaccsConfig(
            extraction_batch_sentences=batch_sentences, extraction_workers=pairing_workers
        ),
    }
    variants: Dict[str, Dict[str, object]] = {}
    witnesses: Dict[str, Dict[str, List[Tuple[SubjectiveTag, ...]]]] = {}
    warm_engine: Optional[ExtractionEngine] = None
    for name, config in variant_configs.items():
        say(f"variant: {name} ...")
        saccs = _make_saccs(world, extractor, config)
        with Timer() as timer:
            saccs.ingest_reviews()
        variants[name] = {
            "ingest_seconds": timer.elapsed,
            "stages": saccs.extraction_engine.timings.as_dict(),
            "cache": saccs.extraction_engine.cache_stats(),
        }
        witnesses[name] = _extracted_tags(saccs)
        if name == "bucketed_parallel":
            warm_engine = saccs.extraction_engine

    say("variant: warm_cache (unchanged-corpus reingest) ...")
    assert warm_engine is not None
    warm_engine.timings.reset()
    hits_before, misses_before = warm_engine.cache.hits, warm_engine.cache.misses
    warm_saccs = _make_saccs(
        world, extractor, variant_configs["bucketed_parallel"]
    )
    warm_saccs.extraction_engine = warm_engine  # inherit the populated cache
    with Timer() as timer:
        warm_saccs.ingest_reviews()
    warm_hits = warm_engine.cache.hits - hits_before
    warm_misses = warm_engine.cache.misses - misses_before
    warm_total = warm_hits + warm_misses
    variants["warm_cache"] = {
        "ingest_seconds": timer.elapsed,
        "stages": warm_engine.timings.as_dict(),
        "cache": {
            "enabled": True,
            "entries": len(warm_engine.cache),
            "hits": warm_hits,
            "misses": warm_misses,
            "hit_ratio": warm_hits / warm_total if warm_total else 0.0,
        },
    }
    witnesses["warm_cache"] = _extracted_tags(warm_saccs)

    # Reduced-precision ingests: full bucketed passes whose decoded tags
    # must match the sequential float64 oracle exactly (the tag-identity
    # witness of the fused inference path).
    precision_results: Dict[str, Dict[str, object]] = {}
    for precision in ("float32", "int8"):
        say(f"variant: bucketed {precision} (fused inference) ...")
        saccs = _make_saccs(
            world,
            extractor,
            SaccsConfig(
                extraction_batch_sentences=batch_sentences,
                extraction_workers=0,
                encoder_precision=precision,
            ),
        )
        with Timer() as timer:
            saccs.ingest_reviews()
        precision_results[precision] = {
            "ingest_seconds": timer.elapsed,
            "stages": saccs.extraction_engine.timings.as_dict(),
        }
        witnesses[f"bucketed_{precision}"] = _extracted_tags(saccs)

    say("encode stage: tape vs fused per precision ...")
    encode = _encode_benchmark(extractor, world, batch_sentences)

    oracle = witnesses["sequential"]
    equivalent = all(witnesses[name] == oracle for name in witnesses)
    if not equivalent:
        raise AssertionError(
            "bucketed/parallel/cached/reduced-precision extraction diverged "
            "from the sequential oracle — refusing to write a benchmark "
            "record for broken output"
        )
    for precision, result in precision_results.items():
        result["tags_identical"] = witnesses[f"bucketed_{precision}"] == oracle

    baseline = variants["sequential"]["ingest_seconds"]
    speedup = {
        name: baseline / variants[name]["ingest_seconds"]
        for name in ("bucketed", "bucketed_parallel", "warm_cache")
    }
    return {
        "seed": seed,
        "workload": {
            "entities": entities,
            "mean_reviews_per_entity": mean_reviews,
            "reviews": num_reviews,
            "sentences": num_sentences,
            "train_epochs": train_epochs,
        },
        "config": {
            "batch_sentences": batch_sentences,
            "pairing_workers": pairing_workers,
        },
        "variants": variants,
        "precisions": precision_results,
        "encode": encode,
        "summary": {
            "sequential_seconds": baseline,
            "speedup": speedup,
            "warm_cache_hit_ratio": variants["warm_cache"]["cache"]["hit_ratio"],
        },
        "equivalent": equivalent,
        "environment": environment_info(),
    }


def write_extract_record(payload: Dict[str, object], output: Optional[str] = None) -> Path:
    """Persist the payload as ``BENCH_extract.json`` (same contract as the
    benchmark harness: ``REPRO_BENCH_OUTPUT_DIR`` overrides the directory)."""
    if output is not None:
        path = Path(output)
    else:
        out_dir = Path(os.environ.get("REPRO_BENCH_OUTPUT_DIR", "."))
        path = out_dir / "BENCH_extract.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path
