"""Tagger training, including FGSM adversarial training (Section 4.3).

The adversarial objective (Eq. 6) mixes the clean loss with the loss on a
worst-case perturbation of the input embeddings:

    min_θ [ α·l(h_θ(x), y) + (1-α)·max_{‖δ‖∞<ε} l(h_θ(x+δ), y) ]

The inner maximisation is approximated with the Fast Gradient Sign Method
(Eq. 9): δ* = ε·sign(∇_x l).  Implementation detail: the clean backward pass
is scaled by α so the parameter gradients of both loss terms accumulate with
the correct mixture weights in a single optimisation step, while the input
gradient's *sign* (all FGSM needs) is unaffected by the positive scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.evaluation import SpanF1, span_f1
from repro.core.tagger import SequenceTagger
from repro.data.schema import LabeledSentence
from repro.nn import Adam, clip_grad_norm
from repro.nn.tensor import Tensor

__all__ = ["AdversarialConfig", "TaggerTrainingConfig", "TaggerTrainer", "evaluate_tagger"]


@dataclass(frozen=True)
class AdversarialConfig:
    """FGSM parameters (Eqs. 6–9)."""

    enabled: bool = False
    epsilon: float = 0.2
    alpha: float = 0.5  # weight of the clean loss

    def __post_init__(self):
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")


@dataclass
class TaggerTrainingConfig:
    """Optimisation parameters (paper: 15 epochs, α=0.5)."""

    epochs: int = 15
    batch_size: int = 16
    learning_rate: float = 1.5e-3
    max_grad_norm: float = 5.0
    adversarial: AdversarialConfig = field(default_factory=AdversarialConfig)
    seed: int = 0


class TaggerTrainer:
    """Mini-batch trainer for :class:`SequenceTagger`."""

    def __init__(self, tagger: SequenceTagger, config: Optional[TaggerTrainingConfig] = None):
        self.tagger = tagger
        self.config = config or TaggerTrainingConfig()
        self.optimizer = Adam(tagger.parameters(), lr=self.config.learning_rate)
        self.history: List[float] = []

    # ----------------------------------------------------------------- fitting

    def fit(self, sentences: Sequence[LabeledSentence]) -> List[float]:
        """Train for ``epochs`` epochs; returns mean loss per epoch."""
        sentences = [s for s in sentences if s.tokens]
        if not sentences:
            raise ValueError("no training sentences")
        rng = np.random.default_rng(self.config.seed)
        batches = self._bucketed_batches(sentences)
        self.tagger.train()
        try:
            for _ in range(self.config.epochs):
                order = rng.permutation(len(batches))
                epoch_losses = []
                for index in order:
                    epoch_losses.append(self._step(batches[index], rng))
                self.history.append(float(np.mean(epoch_losses)))
        finally:
            # An exception mid-epoch must not leave the tagger in train mode
            # (dropout would silently perturb every later predict call).
            self.tagger.eval()
        return self.history

    def _bucketed_batches(self, sentences: Sequence[LabeledSentence]) -> List[List[LabeledSentence]]:
        """Group length-sorted sentences to minimise padding waste."""
        ordered = sorted(sentences, key=lambda s: len(s.tokens))
        size = self.config.batch_size
        return [list(ordered[i : i + size]) for i in range(0, len(ordered), size)]

    # ------------------------------------------------------------------- steps

    def _step(self, batch: List[LabeledSentence], rng: np.random.Generator) -> float:
        tokens = [s.tokens for s in batch]
        label_ids = SequenceTagger.encode_labels([s.labels for s in batch])
        if self.config.adversarial.enabled:
            return self._adversarial_step(tokens, label_ids)
        loss = self.tagger.loss(tokens, label_ids)
        self.optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.tagger.parameters(), self.config.max_grad_norm)
        self.optimizer.step()
        return loss.item()

    def _adversarial_step(self, tokens: List[List[str]], label_ids: np.ndarray) -> float:
        adv = self.config.adversarial
        batch = self.tagger.encoder.batch(tokens)
        self.optimizer.zero_grad()

        # Clean pass on a differentiable copy of the input embeddings;
        # backward scaled by α gives α-weighted parameter grads AND ∇_x l.
        embeddings = Tensor(self.tagger.encoder.word_embeddings(batch).data.copy(), requires_grad=True)
        clean_loss = self.tagger.loss(tokens, label_ids, batch=batch, input_embeddings=embeddings)
        clean_loss.backward(np.asarray(adv.alpha))
        gradient = embeddings.grad
        if gradient is None:  # α == 0: recover the input gradient separately
            embeddings.zero_grad()
            probe_loss = self.tagger.loss(tokens, label_ids, batch=batch, input_embeddings=embeddings)
            probe_loss.backward()
            gradient = embeddings.grad
            self.optimizer.zero_grad()

        # FGSM perturbation (Eq. 9), confined to real (non-padding) words.
        delta = adv.epsilon * np.sign(gradient)
        delta *= batch.word_mask[..., None]
        perturbed = Tensor(embeddings.data + delta)
        adversarial_loss = self.tagger.loss(tokens, label_ids, batch=batch, input_embeddings=perturbed)
        adversarial_loss.backward(np.asarray(1.0 - adv.alpha))

        clip_grad_norm(self.tagger.parameters(), self.config.max_grad_norm)
        self.optimizer.step()
        return adv.alpha * clean_loss.item() + (1 - adv.alpha) * adversarial_loss.item()


def evaluate_tagger(tagger: SequenceTagger, sentences: Sequence[LabeledSentence]) -> SpanF1:
    """Exact-span micro F1 of a tagger on labelled sentences."""
    gold = [s.labels for s in sentences]
    batch_size = 64
    predicted: List[List[str]] = []
    items = [s.tokens for s in sentences]
    for start in range(0, len(items), batch_size):
        predicted.extend(tagger.predict(items[start : start + batch_size]))
    return span_f1(gold, predicted)
