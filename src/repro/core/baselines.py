"""The two baselines of Section 6.2: IR and SIM.

* **IRBaseline** — Okapi BM25 over each entity's concatenated reviews, with
  lexicon-driven synonym/related-term query expansion and a configurable
  per-tag score combination (the paper follows Ganesan & Zhai and picks the
  best combination method; ``combination`` exposes the choices).
* **SimBaseline** — the "determined and tireless user" simulation: try every
  combination of one or two queryable Yelp attributes, rank matches by star
  rating, and keep the combination that maximises NDCG against the ground
  truth.  This is an oracle-strength baseline by construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.entities import ATTRIBUTE_VALUES
from repro.data.schema import Entity, Review
from repro.ir.bm25 import Bm25Index
from repro.ir.expansion import QueryExpander
from repro.ir.metrics import ndcg
from repro.text.lexicon import DomainLexicon
from repro.text.tokenize import word_tokenize

__all__ = ["IRBaseline", "SimBaseline"]

SatFn = Callable[[str, str], float]


class IRBaseline:
    """Keyword search over review text with query expansion."""

    def __init__(
        self,
        entities: Sequence[Entity],
        reviews: Mapping[str, Sequence[Review]],
        lexicon: DomainLexicon,
        expand: bool = True,
        combination: str = "mean",
    ):
        if combination not in ("mean", "sum", "max"):
            raise ValueError("combination must be one of mean/sum/max")
        self.entities = list(entities)
        self.combination = combination
        self.expander = QueryExpander(lexicon) if expand else None
        self.index = Bm25Index()
        for entity in self.entities:
            tokens: List[str] = []
            for review in reviews.get(entity.entity_id, []):
                tokens.extend(review.tokens)
            self.index.add_document(entity.entity_id, tokens or ["<empty>"])
        self.index.finalize()

    def _tag_scores(self, tag_text: str) -> Dict[str, float]:
        tokens = word_tokenize(tag_text)
        query: Mapping[str, float]
        if self.expander is not None:
            query = self.expander.expand_query(tokens)
        else:
            query = {token: 1.0 for token in tokens}
        scores = self.index.score(query)
        top = max(scores.values(), default=0.0)
        if top <= 0:
            return {}
        # Min-max normalise per tag so multi-tag combination is scale-free.
        return {entity_id: score / top for entity_id, score in scores.items()}

    def rank(self, query_tags: Sequence[str], top_k: Optional[int] = 10) -> List[Tuple[str, float]]:
        """Entities ranked by combined per-tag BM25 relevance."""
        per_tag = [self._tag_scores(tag) for tag in query_tags]
        combined: Dict[str, float] = {}
        for entity in self.entities:
            scores = [scores_t.get(entity.entity_id, 0.0) for scores_t in per_tag]
            if self.combination == "mean":
                combined[entity.entity_id] = float(np.mean(scores)) if scores else 0.0
            elif self.combination == "sum":
                combined[entity.entity_id] = float(np.sum(scores))
            else:
                combined[entity.entity_id] = float(np.max(scores)) if scores else 0.0
        ranked = sorted(combined.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top_k] if top_k else ranked


class SimBaseline:
    """Exhaustive Yelp-attribute filtering, keeping the NDCG-best combo."""

    def __init__(self, entities: Sequence[Entity], max_attributes: int = 2):
        if max_attributes not in (1, 2):
            raise ValueError("the paper evaluates SIM with 1 or 2 attributes")
        self.entities = list(entities)
        self.max_attributes = max_attributes

    def _combinations(self) -> List[Tuple[Tuple[str, object], ...]]:
        singles = [
            ((name, value),)
            for name, values in ATTRIBUTE_VALUES.items()
            for value in values
        ]
        combos: List[Tuple[Tuple[str, object], ...]] = list(singles)
        if self.max_attributes == 2:
            names = list(ATTRIBUTE_VALUES)
            for name_a, name_b in itertools.combinations(names, 2):
                for value_a in ATTRIBUTE_VALUES[name_a]:
                    for value_b in ATTRIBUTE_VALUES[name_b]:
                        combos.append(((name_a, value_a), (name_b, value_b)))
        return combos

    def _ranking_for(self, combo: Tuple[Tuple[str, object], ...]) -> List[str]:
        matches = [
            e for e in self.entities
            if all(e.attributes.get(name) == value for name, value in combo)
        ]
        rest = [e for e in self.entities if e not in matches]
        by_stars = lambda e: (-e.stars, e.entity_id)
        # A determined user scrolls past the filtered list if it is short.
        ordered = sorted(matches, key=by_stars) + sorted(rest, key=by_stars)
        return [e.entity_id for e in ordered]

    def rank_best(
        self,
        query_tags: Sequence[str],
        sat: SatFn,
        top_k: int = 10,
    ) -> Tuple[List[str], float]:
        """Best attribute-combo ranking for the query, with its NDCG.

        The NDCG-maximising selection is what makes SIM "a very strong
        baseline": it assumes the user somehow always picks the best filters.
        """
        all_ids = [e.entity_id for e in self.entities]
        best_ranking: List[str] = all_ids
        best_score = -1.0
        for combo in self._combinations():
            ranking = self._ranking_for(combo)
            score = ndcg(query_tags, ranking[:top_k], sat, all_ids, top_k=top_k)
            if score > best_score:
                best_score = score
                best_ranking = ranking
        return best_ranking[:top_k], best_score
