"""The sequence tagger: BERT → BiLSTM → CRF (Section 4.1, Figure 3).

Contextual word vectors from the miniature BERT feed a BiLSTM whose output
is projected to per-label emission scores; a linear-chain CRF decodes the
IOB sequence under learned (and IOB-grammar-constrained) transitions.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bert.encoder import BertWordEncoder
from repro.bert.model import BatchEncoding
from repro.nn import BiLSTM, Dropout, LinearChainCRF, Linear, Module
from repro.nn.infer import PRECISIONS, InferenceModel
from repro.nn.tensor import Tensor
from repro.text.labels import ID_TO_LABEL, LABEL_TO_ID, NUM_LABELS, forbidden_transitions, labels_to_spans
from repro.utils.timing import StageTimings

__all__ = ["SequenceTagger"]


class SequenceTagger(Module):
    """BERT + BiLSTM + CRF token tagger over word sequences."""

    def __init__(
        self,
        encoder: BertWordEncoder,
        rng: np.random.Generator,
        lstm_hidden: int = 48,
        dropout: float = 0.1,
        decode_beam: Optional[int] = None,
        use_crf: bool = True,
        encoder_precision: str = "float64",
    ):
        super().__init__()
        self.encoder = encoder
        # BERT is part of the trained model (fine-tuned with the tagger), so
        # its attention heads become task-aware — which Section 5.1's
        # attention pairing heuristic relies on.
        self.bert = encoder.model
        self.bilstm = BiLSTM(encoder.dim, lstm_hidden, rng)
        self.dropout = Dropout(dropout, np.random.default_rng(int(rng.integers(2**32))))
        self.projection = Linear(2 * lstm_hidden, NUM_LABELS, rng)
        #: ablation switch: without the CRF, training is per-token cross
        #: entropy and decoding is independent argmax (no IOB constraints).
        self.use_crf = use_crf
        if use_crf:
            self.crf = LinearChainCRF(NUM_LABELS, rng)
            self.crf.constrain_transitions(forbidden_transitions())
        self.decode_beam = decode_beam
        #: default precision for :meth:`predict`'s tape-free fused path.
        #: ``"float64"`` replays the training forward bitwise; ``"float32"``
        #: and ``"int8"`` trade tolerance-bounded emission error for speed.
        if encoder_precision not in PRECISIONS:
            raise ValueError(
                f"encoder_precision must be one of {PRECISIONS}, got {encoder_precision!r}"
            )
        self.encoder_precision = encoder_precision
        # Exported InferenceModels keyed by precision, invalidated by the
        # weights version: train() and load_state_dict() are the sanctioned
        # "weights may have changed" signals and each bumps the counter.
        self._infer_models: dict = {}
        self._infer_version = 0

    # ------------------------------------------------------------- inference

    def train(self) -> "SequenceTagger":
        self._infer_version += 1
        return super().train()

    def load_state_dict(self, state) -> None:
        self._infer_version += 1
        super().load_state_dict(state)

    def inference_model(self, precision: Optional[str] = None) -> InferenceModel:
        """The tape-free fused export of this tagger at ``precision``.

        Exports lazily and caches per precision; a cached model is reused
        until the weights version moves (any :meth:`train` or
        :meth:`load_state_dict` call), so steady-state extraction exports
        once and then runs allocation-free.
        """
        precision = precision or self.encoder_precision
        cached = self._infer_models.get(precision)
        if cached is not None and cached[0] == self._infer_version:
            return cached[1]
        model = InferenceModel.from_tagger(self, precision)
        self._infer_models[precision] = (self._infer_version, model)
        return model

    # ---------------------------------------------------------------- forward

    def emissions(
        self,
        sentences: Sequence[Sequence[str]],
        batch: Optional[BatchEncoding] = None,
        input_embeddings: Optional[Tensor] = None,
    ) -> Tuple[Tensor, np.ndarray, BatchEncoding]:
        """Per-token label scores ``(B, T, L)`` plus mask and batch encoding.

        ``input_embeddings`` substitutes (possibly perturbed) word embeddings
        — the adversarial training path.
        """
        batch = batch or self.encoder.batch(sentences)
        hidden = self.bert.forward(batch, input_embeddings=input_embeddings)
        features = self.bilstm(self.dropout(hidden), mask=batch.word_mask)
        return self.projection(features), batch.word_mask, batch

    def loss(
        self,
        sentences: Sequence[Sequence[str]],
        label_ids: np.ndarray,
        batch: Optional[BatchEncoding] = None,
        input_embeddings: Optional[Tensor] = None,
    ) -> Tensor:
        """Training loss: CRF negative log-likelihood (or token CE w/o CRF)."""
        emissions, mask, batch = self.emissions(sentences, batch=batch, input_embeddings=input_embeddings)
        width = emissions.shape[1]
        if self.use_crf:
            return self.crf.neg_log_likelihood(emissions, label_ids[:, :width], mask=mask)
        from repro.nn import functional as F

        return F.cross_entropy(emissions, label_ids[:, :width], mask=mask)

    # --------------------------------------------------------------- decoding

    def predict(
        self,
        sentences: Sequence[Sequence[str]],
        timings: Optional["StageTimings"] = None,
        precision: Optional[str] = None,
    ) -> List[List[str]]:
        """IOB label sequences for a batch of tokenised sentences.

        Runs the tape-free fused inference path (:mod:`repro.nn.infer`) at
        ``precision`` (default :attr:`encoder_precision`); the float64
        export is bitwise identical to the autograd forward, so the default
        behaviour is unchanged while skipping all tape construction.

        ``timings`` (a :class:`~repro.utils.timing.StageTimings`) receives
        ``encode`` (BERT→BiLSTM→projection forward) and ``decode`` (Viterbi
        / argmax) spans — how the extraction engine attributes ingest time.
        """
        if not sentences:
            return []
        was_training = self.training
        self.eval()
        try:
            encode_span = timings.span("encode") if timings is not None else nullcontext()
            with encode_span:
                model = self.inference_model(precision)
                batch = self.encoder.batch(sentences)
                scores = model.emissions(batch)
                mask = batch.word_mask
            decode_span = timings.span("decode") if timings is not None else nullcontext()
            with decode_span:
                if self.use_crf:
                    paths = self.crf.decode(
                        np.asarray(scores, dtype=np.float64), mask=mask, beam=self.decode_beam
                    )
                else:
                    argmax = scores.argmax(axis=-1)
                    paths = [
                        [int(v) for v in row[: int(m.sum())]] for row, m in zip(argmax, mask)
                    ]
        finally:
            # An exception mid-decode must not leave the model stuck in
            # eval mode (dropout silently disabled for the rest of training).
            if was_training:
                self.train()
        labels = [[ID_TO_LABEL[i] for i in path] for path in paths]
        # Pad back to the original sentence length if the encoder truncated.
        out: List[List[str]] = []
        for sentence, seq in zip(sentences, labels):
            if len(seq) < len(sentence):
                seq = seq + ["O"] * (len(sentence) - len(seq))
            out.append(seq[: len(sentence)])
        return out

    def extract_spans(self, tokens: Sequence[str]) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
        """(aspect_spans, opinion_spans) for one sentence."""
        labels = self.predict([list(tokens)])[0]
        return labels_to_spans(labels)

    # ------------------------------------------------------------------ utils

    @staticmethod
    def encode_labels(label_sequences: Sequence[Sequence[str]], width: Optional[int] = None) -> np.ndarray:
        """Dense ``(B, T)`` label-id array padded with O."""
        width = width or max(len(seq) for seq in label_sequences)
        out = np.full((len(label_sequences), width), LABEL_TO_ID["O"], dtype=np.int64)
        for i, seq in enumerate(label_sequences):
            for j, label in enumerate(seq[:width]):
                out[i, j] = LABEL_TO_ID[label]
        return out
