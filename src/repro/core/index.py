"""The subjective tag index (Section 3.1, Table 1, Figure 1).

An inverted index mapping each subjective tag to the entities whose reviews
mention it, each with a *degree of truth* (Eq. 1):

    Deg_truth(tag, e) = log(|R_e| + 1) / |T_e^tag| * Σ_{t ∈ T_e^tag} Sim(tag, t)

where ``R_e`` is the entity's review set and ``T_e^tag`` the multiset of
review-extracted tags whose conceptual similarity to ``tag`` exceeds
``θ_index``.  The log factor privileges entities with more reviews (more
statistically significant evidence).  Degrees are optionally normalised by
``log(max reviews + 1)`` so displayed values land in [0, 1] like Table 1;
normalisation is a global constant and does not change any ranking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.tags import SubjectiveTag
from repro.text.similarity import ConceptualSimilarity

__all__ = ["IndexEntry", "SubjectiveTagIndex"]


@dataclass
class IndexEntry:
    """One (entity, degree-of-truth) mapping under a tag."""

    entity_id: str
    degree: float


class SubjectiveTagIndex:
    """Inverted index over subjective tags with degrees of truth."""

    def __init__(
        self,
        similarity: ConceptualSimilarity,
        theta_index: float = 0.70,
        normalize_degrees: bool = True,
        review_count_mode: str = "matched",
        theta_mode: str = "static",
        dynamic_margin: float = 0.08,
    ):
        if not 0.0 < theta_index < 1.0:
            raise ValueError("theta_index must lie in (0, 1)")
        if review_count_mode not in ("matched", "all"):
            raise ValueError("review_count_mode must be 'matched' or 'all'")
        if theta_mode not in ("static", "dynamic"):
            raise ValueError("theta_mode must be 'static' or 'dynamic'")
        self.similarity = similarity
        self.theta_index = theta_index
        self.normalize_degrees = normalize_degrees
        #: Interpretation of |R_e| in Eq. 1.  The equation's text reads "the
        #: set of entity e's reviews", but taken literally the degree becomes
        #: frequency-blind (one lucky mention scores like twenty), defeating
        #: the stated motivation that more supporting evidence should raise
        #: the degree.  ``"matched"`` (default) counts the reviews that
        #: contributed at least one matching tag — the reading under which
        #: the log weight does what the paper says it does.  ``"all"`` is the
        #: literal reading, kept for the ablation benchmark.
        self.review_count_mode = review_count_mode
        #: Section-7 future work: "adjust these [thresholds] dynamically
        #: depending on the semantics of the subjective tags being compared".
        #: In ``dynamic`` mode each tag's threshold adapts to how *generic*
        #: the tag is: a tag similar to many review tags (e.g. "good food")
        #: gets a threshold raised toward the top of its similarity
        #: distribution, a specific tag keeps the configured floor.
        self.theta_mode = theta_mode
        self.dynamic_margin = dynamic_margin
        self._entries: Dict[SubjectiveTag, Dict[str, float]] = {}
        #: per-entity, per-review extracted tags, kept so new index tags can
        #: be mapped without re-reading reviews (the Figure 1 indexing round).
        self._entity_tags: Dict[str, List[List[SubjectiveTag]]] = {}
        self._entity_review_counts: Dict[str, int] = {}

    # ------------------------------------------------------------- population

    def register_entity(
        self,
        entity_id: str,
        review_tags: Sequence[Sequence[SubjectiveTag]],
    ) -> None:
        """Store an entity's per-review extracted tags (extraction output)."""
        self._entity_tags[entity_id] = [list(tags) for tags in review_tags]
        self._entity_review_counts[entity_id] = len(review_tags)

    def add_tag(self, tag: SubjectiveTag) -> None:
        """Add an index tag and compute its entity mappings (Eq. 1)."""
        if tag in self._entries:
            return
        theta = self._threshold_for(tag)
        mapping: Dict[str, float] = {}
        for entity_id in self._entity_tags:
            degree = self._degree_of_truth(tag, entity_id, theta)
            if degree > 0.0:
                mapping[entity_id] = degree
        self._entries[tag] = mapping

    def _threshold_for(self, tag: SubjectiveTag) -> float:
        """Per-tag similarity threshold (static, or semantics-adaptive)."""
        if self.theta_mode == "static":
            return self.theta_index
        similarities: List[float] = []
        for per_review in self._entity_tags.values():
            for review_tag_list in per_review:
                for review_tag in review_tag_list:
                    score = self.similarity.tag_similarity(tag.pair, review_tag.pair)
                    if score > 0.0:
                        similarities.append(score)
        if not similarities:
            return self.theta_index
        # Generic tags see many high-similarity neighbours; push the
        # threshold up toward (max - margin) so only close matches count.
        peak = max(similarities)
        adaptive = peak - self.dynamic_margin
        return float(min(max(self.theta_index, adaptive), 0.95))

    def build(self, tags: Iterable[SubjectiveTag]) -> "SubjectiveTagIndex":
        """Add many tags (one indexing round)."""
        for tag in tags:
            self.add_tag(tag)
        return self

    def _degree_of_truth(self, tag: SubjectiveTag, entity_id: str, theta: Optional[float] = None) -> float:
        theta = self.theta_index if theta is None else theta
        matched: List[float] = []
        matching_reviews = 0
        for review_tag_list in self._entity_tags[entity_id]:
            review_matched = False
            for review_tag in review_tag_list:
                score = self.similarity.tag_similarity(tag.pair, review_tag.pair)
                if score > theta:
                    matched.append(score)
                    review_matched = True
            matching_reviews += int(review_matched)
        if not matched:
            return 0.0
        if self.review_count_mode == "matched":
            review_count = matching_reviews
        else:
            review_count = self._entity_review_counts[entity_id]
        degree = math.log(review_count + 1) / len(matched) * sum(matched)
        if self.normalize_degrees:
            max_reviews = max(self._entity_review_counts.values(), default=1)
            degree /= math.log(max_reviews + 1)
        return degree

    # ---------------------------------------------------------------- queries

    @property
    def tags(self) -> List[SubjectiveTag]:
        return list(self._entries)

    def __contains__(self, tag: SubjectiveTag) -> bool:
        return tag in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, tag: SubjectiveTag) -> Dict[str, float]:
        """Exact-tag entity mapping (empty if the tag is not indexed)."""
        return dict(self._entries.get(tag, {}))

    def lookup_similar(self, tag: SubjectiveTag, theta_filter: float) -> Dict[str, float]:
        """Union of similar index tags' mappings, degrees scaled by similarity.

        Implements Algorithm 1 line 10: for an unknown tag, combine the
        mappings of all index tags with similarity above ``θ_filter``; an
        entity reached through several similar tags accumulates their
        contributions (the paper's worked example sums ``s1·0.76 + s2·0.94``
        for Anchovy).
        """
        combined: Dict[str, float] = {}
        for index_tag, mapping in self._entries.items():
            score = self.similarity.tag_similarity(tag.pair, index_tag.pair)
            if score <= theta_filter:
                continue
            for entity_id, degree in mapping.items():
                combined[entity_id] = combined.get(entity_id, 0.0) + score * degree
        return combined

    def snippet(self, max_tags: int = 4, max_entities: int = 3) -> str:
        """A Table-1-style textual rendering (for examples and docs)."""
        lines = []
        for tag in list(self._entries)[:max_tags]:
            entries = sorted(self._entries[tag].items(), key=lambda kv: -kv[1])[:max_entities]
            rendered = ", ".join(f"{e} ({d:.2f})" for e, d in entries)
            lines.append(f"{tag.text:<22} -> {rendered}")
        return "\n".join(lines)
