"""The subjective tag index (Section 3.1, Table 1, Figure 1).

An inverted index mapping each subjective tag to the entities whose reviews
mention it, each with a *degree of truth* (Eq. 1):

    Deg_truth(tag, e) = log(|R_e| + 1) / |T_e^tag| * Σ_{t ∈ T_e^tag} Sim(tag, t)

where ``R_e`` is the entity's review set and ``T_e^tag`` the multiset of
review-extracted tags whose conceptual similarity to ``tag`` exceeds
``θ_index``.  The log factor privileges entities with more reviews (more
statistically significant evidence).  Degrees are optionally normalised by
``log(max reviews + 1)`` so displayed values land in [0, 1] like Table 1;
normalisation is a global constant and does not change any ranking.

Two backends compute the same numbers:

* ``"vectorized"`` (default) — review-tag occurrences are interned into a
  :class:`~repro.text.vocab.TagVocabulary` and stored as CSR-style id
  arrays; each ``add_tag`` is one kernel row against the vocabulary plus a
  few segmented reductions, and ``lookup_similar`` is a masked matvec over
  the incrementally built (index_tags × vocab) similarity matrix and the
  dense degree matrix.
* ``"scalar"`` — the original per-pair reference oracle, kept so tests and
  benchmarks can assert the two agree to ≤ 1e-9 on every score.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.tags import SubjectiveTag
from repro.obs import tracing as obs
from repro.text.similarity import ConceptualSimilarity, tag_pair
from repro.text.vocab import TagVocabulary

__all__ = ["IndexEntry", "SubjectiveTagIndex"]


@dataclass
class IndexEntry:
    """One (entity, degree-of-truth) mapping under a tag."""

    entity_id: str
    degree: float


class SubjectiveTagIndex:
    """Inverted index over subjective tags with degrees of truth."""

    def __init__(
        self,
        similarity: ConceptualSimilarity,
        theta_index: float = 0.70,
        normalize_degrees: bool = True,
        review_count_mode: str = "matched",
        theta_mode: str = "static",
        dynamic_margin: float = 0.08,
        backend: str = "vectorized",
    ):
        if not 0.0 < theta_index < 1.0:
            raise ValueError("theta_index must lie in (0, 1)")
        if review_count_mode not in ("matched", "all"):
            raise ValueError("review_count_mode must be 'matched' or 'all'")
        if theta_mode not in ("static", "dynamic"):
            raise ValueError("theta_mode must be 'static' or 'dynamic'")
        if backend not in ("vectorized", "scalar"):
            raise ValueError("backend must be 'vectorized' or 'scalar'")
        self.similarity = similarity
        self.theta_index = theta_index
        self.normalize_degrees = normalize_degrees
        #: Interpretation of |R_e| in Eq. 1.  The equation's text reads "the
        #: set of entity e's reviews", but taken literally the degree becomes
        #: frequency-blind (one lucky mention scores like twenty), defeating
        #: the stated motivation that more supporting evidence should raise
        #: the degree.  ``"matched"`` (default) counts the reviews that
        #: contributed at least one matching tag — the reading under which
        #: the log weight does what the paper says it does.  ``"all"`` is the
        #: literal reading, kept for the ablation benchmark.
        self.review_count_mode = review_count_mode
        #: Section-7 future work: "adjust these [thresholds] dynamically
        #: depending on the semantics of the subjective tags being compared".
        #: In ``dynamic`` mode each tag's threshold adapts to how *generic*
        #: the tag is: a tag similar to many review tags (e.g. "good food")
        #: gets a threshold raised toward the top of its similarity
        #: distribution, a specific tag keeps the configured floor.
        self.theta_mode = theta_mode
        self.dynamic_margin = dynamic_margin
        self.backend = backend
        #: every distinct tag seen at registration or indexing time, interned
        #: to an integer id with kernel features resolved once.
        self.vocab = TagVocabulary(similarity)
        self._entries: Dict[SubjectiveTag, Dict[str, float]] = {}
        #: per-entity, per-review extracted tags, kept so new index tags can
        #: be mapped without re-reading reviews (the Figure 1 indexing round).
        self._entity_tags: Dict[str, List[List[SubjectiveTag]]] = {}
        self._entity_review_counts: Dict[str, int] = {}
        #: dynamic-mode per-tag thresholds, cached until the corpus changes.
        self._threshold_cache: Dict[SubjectiveTag, float] = {}
        # ----- matrix backing (vectorized backend) -----
        self._entity_order: List[str] = []
        self._entity_col: Dict[str, int] = {}
        self._occ_dirty = False
        self._occ_ids = np.zeros(0, dtype=np.intp)
        self._review_indptr = np.zeros(1, dtype=np.intp)
        self._review_entity = np.zeros(0, dtype=np.intp)
        self._review_counts_vec = np.zeros(0)
        #: similarity rows: one per index tag, each covering the vocabulary
        #: prefix that existed when the row was computed (rectangularised
        #: lazily by :meth:`_sync_sim_cols`).
        self._sim_rows: List[np.ndarray] = []
        self._sim_cols = 0
        self._degree_rows: List[np.ndarray] = []
        self._sim_cache: Optional[np.ndarray] = None
        self._degree_cache: Optional[np.ndarray] = None
        self._matrix_stale = False

    # ------------------------------------------------------------- population

    def register_entity(
        self,
        entity_id: str,
        review_tags: Sequence[Sequence[SubjectiveTag]],
    ) -> None:
        """Store an entity's per-review extracted tags (extraction output)."""
        per_review = [list(tags) for tags in review_tags]
        self._entity_tags[entity_id] = per_review
        self._entity_review_counts[entity_id] = len(per_review)
        if entity_id not in self._entity_col:
            self._entity_col[entity_id] = len(self._entity_order)
            self._entity_order.append(entity_id)
        for tags in per_review:
            self.vocab.intern_many(tags)
        self._occ_dirty = True
        self._threshold_cache.clear()

    def add_tag(self, tag: SubjectiveTag) -> None:
        """Add an index tag and compute its entity mappings (Eq. 1)."""
        if tag in self._entries:
            return
        if self.backend == "scalar":
            theta = self._threshold_for(tag)
            mapping: Dict[str, float] = {}
            for entity_id in self._entity_tags:
                degree = self._degree_of_truth(tag, entity_id, theta)
                if degree > 0.0:
                    mapping[entity_id] = degree
            self._entries[tag] = mapping
            return
        self._ensure_occ()
        self._ensure_matrix()
        self.vocab.intern(tag)
        row = self.vocab.similarity_rows([tag])[0]
        theta = self._threshold_for(tag, _row=row)
        degrees = self._degrees_from_row(row, theta)
        self._entries[tag] = {
            entity_id: float(degree)
            for entity_id, degree in zip(self._entity_order, degrees)
            if degree > 0.0
        }
        self._sim_rows.append(row)
        self._degree_rows.append(degrees)
        self._sim_cache = None
        self._degree_cache = None

    def _threshold_for(self, tag: SubjectiveTag, _row: Optional[np.ndarray] = None) -> float:
        """Per-tag similarity threshold (static, or semantics-adaptive).

        Dynamic mode compares the tag against each *distinct* review tag in
        the vocabulary — not every occurrence, which made each ``add_tag``
        O(total review tags) for no gain (duplicates cannot change the peak).
        The result is cached per tag until new entities are registered.
        """
        if self.theta_mode == "static":
            return self.theta_index
        cached = self._threshold_cache.get(tag)
        if cached is not None:
            return cached
        self._ensure_occ()
        distinct = np.unique(self._occ_ids)
        if distinct.size == 0:
            theta = self.theta_index
        else:
            if _row is not None:
                sims = _row[distinct]
            elif self.backend == "vectorized":
                sims = self.vocab.similarity_rows([tag])[0][distinct]
            else:
                sims = np.array(
                    [
                        self.similarity.tag_similarity(tag.pair, tag_pair(self.vocab.tag_of(i)))
                        for i in distinct
                    ]
                )
            positive = sims[sims > 0.0]
            if positive.size == 0:
                theta = self.theta_index
            else:
                # Generic tags see many high-similarity neighbours; push the
                # threshold up toward (max - margin) so only close matches count.
                peak = float(positive.max())
                theta = float(min(max(self.theta_index, peak - self.dynamic_margin), 0.95))
        self._threshold_cache[tag] = theta
        return theta

    def build(self, tags: Iterable[SubjectiveTag]) -> "SubjectiveTagIndex":
        """Add many tags (one indexing round)."""
        for tag in tags:
            self.add_tag(tag)
        return self

    def _degree_of_truth(self, tag: SubjectiveTag, entity_id: str, theta: Optional[float] = None) -> float:
        """Scalar-path Eq. 1 for one (tag, entity) pair — the reference oracle."""
        theta = self.theta_index if theta is None else theta
        matched: List[float] = []
        matching_reviews = 0
        for review_tag_list in self._entity_tags[entity_id]:
            review_matched = False
            for review_tag in review_tag_list:
                score = self.similarity.tag_similarity(tag.pair, review_tag.pair)
                if score > theta:
                    matched.append(score)
                    review_matched = True
            matching_reviews += int(review_matched)
        if not matched:
            return 0.0
        if self.review_count_mode == "matched":
            review_count = matching_reviews
        else:
            review_count = self._entity_review_counts[entity_id]
        degree = math.log(review_count + 1) / len(matched) * sum(matched)
        if self.normalize_degrees:
            max_reviews = max(self._entity_review_counts.values(), default=1)
            degree /= math.log(max_reviews + 1)
        return degree

    # ------------------------------------------------------- matrix plumbing

    def _ensure_occ(self) -> None:
        """(Re)build the CSR occurrence arrays after corpus changes."""
        if not self._occ_dirty:
            return
        occ: List[int] = []
        indptr: List[int] = [0]
        review_entity: List[int] = []
        for entity_id in self._entity_order:
            col = self._entity_col[entity_id]
            for review in self._entity_tags.get(entity_id, ()):
                occ.extend(self.vocab.intern(tag) for tag in review)
                indptr.append(len(occ))
                review_entity.append(col)
        self._occ_ids = np.asarray(occ, dtype=np.intp)
        self._review_indptr = np.asarray(indptr, dtype=np.intp)
        self._review_entity = np.asarray(review_entity, dtype=np.intp)
        self._review_counts_vec = np.asarray(
            [float(self._entity_review_counts.get(eid, 0)) for eid in self._entity_order]
        )
        # Entities registered after a tag was added keep degree 0 for that
        # tag (mappings are computed at add time, matching the scalar path).
        n_entities = len(self._entity_order)
        self._degree_rows = [
            np.pad(row, (0, n_entities - len(row))) if len(row) < n_entities else row
            for row in self._degree_rows
        ]
        self._degree_cache = None
        self._occ_dirty = False

    def _ensure_matrix(self) -> None:
        """Fully rebuild similarity/degree rows after a snapshot restore."""
        if not self._matrix_stale:
            return
        tags = list(self._entries)
        if tags:
            block = self.vocab.similarity_rows(tags)
            self._sim_rows = [block[i] for i in range(len(tags))]
        else:
            self._sim_rows = []
        self._sim_cols = len(self.vocab)
        n_entities = len(self._entity_order)
        self._degree_rows = []
        for tag in tags:
            row = np.zeros(n_entities)
            for entity_id, degree in self._entries[tag].items():
                col = self._entity_col.get(entity_id)
                if col is not None:
                    row[col] = degree
            self._degree_rows.append(row)
        self._sim_cache = None
        self._degree_cache = None
        self._matrix_stale = False

    def _sync_sim_cols(self) -> None:
        """Rectangularise similarity rows up to the current vocabulary size.

        Rows are appended covering whatever vocabulary prefix existed at add
        time; one batched kernel call fills every missing suffix at once.
        """
        vocab_size = len(self.vocab)
        tags = list(self._entries)
        short = [i for i, row in enumerate(self._sim_rows) if len(row) < vocab_size]
        if not short:
            self._sim_cols = vocab_size
            return
        start = min(len(self._sim_rows[i]) for i in short)
        block = self.similarity.similarity_block(
            self.similarity.tag_features([tags[i] for i in short]),
            self.vocab.features_range(start, vocab_size),
        )
        for block_i, i in enumerate(short):
            row = self._sim_rows[i]
            self._sim_rows[i] = np.concatenate([row, block[block_i, len(row) - start :]])
        self._sim_cache = None
        self._sim_cols = vocab_size

    def _sim_matrix(self) -> np.ndarray:
        """The cached (index_tags × vocab) similarity matrix."""
        if self._sim_cache is None:
            self._sim_cache = (
                np.vstack(self._sim_rows) if self._sim_rows else np.zeros((0, self._sim_cols))
            )
        return self._sim_cache

    def _degree_matrix(self) -> np.ndarray:
        """The cached (index_tags × entities) degree-of-truth matrix."""
        if self._degree_cache is None:
            n_entities = len(self._entity_order)
            self._degree_cache = (
                np.vstack(self._degree_rows)
                if self._degree_rows
                else np.zeros((0, n_entities))
            )
        return self._degree_cache

    def _degrees_from_row(self, row: np.ndarray, theta: float) -> np.ndarray:
        """Eq. 1 for every entity at once, given a tag's vocab similarity row."""
        scores = row[self._occ_ids]
        mask = scores > theta
        hit_cum = np.concatenate(([0], np.cumsum(mask)))
        sum_cum = np.concatenate(([0.0], np.cumsum(np.where(mask, scores, 0.0))))
        start, stop = self._review_indptr[:-1], self._review_indptr[1:]
        per_review_hits = hit_cum[stop] - hit_cum[start]
        per_review_sums = sum_cum[stop] - sum_cum[start]
        n_entities = len(self._entity_order)
        hits = np.bincount(self._review_entity, weights=per_review_hits, minlength=n_entities)
        sums = np.bincount(self._review_entity, weights=per_review_sums, minlength=n_entities)
        matched_reviews = np.bincount(
            self._review_entity,
            weights=(per_review_hits > 0).astype(float),
            minlength=n_entities,
        )
        counts = matched_reviews if self.review_count_mode == "matched" else self._review_counts_vec
        degrees = np.zeros(n_entities)
        nonzero = hits > 0
        degrees[nonzero] = np.log(counts[nonzero] + 1.0) / hits[nonzero] * sums[nonzero]
        if self.normalize_degrees:
            max_reviews = max(self._entity_review_counts.values(), default=1)
            denom = math.log(max_reviews + 1)
            if denom > 0.0:
                degrees /= denom
        return degrees

    def restore_snapshot(
        self,
        entries: Mapping[SubjectiveTag, Mapping[str, float]],
        entity_tags: Mapping[str, Sequence[Sequence[SubjectiveTag]]],
        entity_review_counts: Mapping[str, int],
    ) -> None:
        """Install deserialised state (used by :mod:`repro.core.index_io`)."""
        self._entries = {tag: dict(mapping) for tag, mapping in entries.items()}
        self._entity_tags = {
            entity_id: [list(tags) for tags in per_review]
            for entity_id, per_review in entity_tags.items()
        }
        self._entity_review_counts = {
            entity_id: int(count) for entity_id, count in entity_review_counts.items()
        }
        self._entity_order = []
        self._entity_col = {}
        for entity_id in self._entity_tags:
            self._entity_col[entity_id] = len(self._entity_order)
            self._entity_order.append(entity_id)
        for mapping in self._entries.values():
            for entity_id in mapping:
                if entity_id not in self._entity_col:
                    self._entity_col[entity_id] = len(self._entity_order)
                    self._entity_order.append(entity_id)
                    self._entity_review_counts.setdefault(entity_id, 0)
        for per_review in self._entity_tags.values():
            for tags in per_review:
                self.vocab.intern_many(tags)
        self.vocab.intern_many(self._entries)
        self._threshold_cache.clear()
        self._occ_dirty = True
        self._matrix_stale = True
        self._sim_cache = None
        self._degree_cache = None

    # ---------------------------------------------------------------- queries

    @property
    def tags(self) -> List[SubjectiveTag]:
        return list(self._entries)

    def __contains__(self, tag: SubjectiveTag) -> bool:
        return tag in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, tag: SubjectiveTag) -> Dict[str, float]:
        """Exact-tag entity mapping (empty if the tag is not indexed)."""
        return dict(self._entries.get(tag, {}))

    def lookup_similar(self, tag: SubjectiveTag, theta_filter: float) -> Dict[str, float]:
        """Union of similar index tags' mappings, degrees scaled by similarity.

        Implements Algorithm 1 line 10: for an unknown tag, combine the
        mappings of all index tags with similarity above ``θ_filter``; an
        entity reached through several similar tags accumulates their
        contributions (the paper's worked example sums ``s1·0.76 + s2·0.94``
        for Anchovy).
        """
        return self.lookup_similar_batch([tag], theta_filter)[0]

    def lookup_similar_batch(
        self, tags: Sequence[SubjectiveTag], theta_filter: float
    ) -> List[Dict[str, float]]:
        """:meth:`lookup_similar` for many tags with one batched kernel pass.

        A multi-tag utterance issues a single call; similarity rows for tags
        already interned in the vocabulary come straight out of the cached
        (index_tags × vocab) matrix, the rest share one kernel block.
        """
        tags = list(tags)
        with obs.span("index.similarity", tags=len(tags), backend=self.backend):
            if self.backend == "scalar":
                return [self._scalar_lookup_similar(tag, theta_filter) for tag in tags]
            if not self._entries or not tags:
                return [{} for _ in tags]
            self._ensure_occ()
            self._ensure_matrix()
            self._sync_sim_cols()
            degree_matrix = self._degree_matrix()
            index_tags = list(self._entries)
            score_rows: List[Optional[np.ndarray]] = []
            fresh_tags: List[SubjectiveTag] = []
            fresh_positions: List[int] = []
            sim_matrix: Optional[np.ndarray] = None
            for position, tag in enumerate(tags):
                tag_id = self.vocab.id_of(tag)
                if tag_id is not None and tag_id < self._sim_cols:
                    if sim_matrix is None:
                        sim_matrix = self._sim_matrix()
                    # Similarity is symmetric, so the cached column doubles as
                    # the query row.
                    score_rows.append(sim_matrix[:, tag_id])
                else:
                    score_rows.append(None)
                    fresh_tags.append(tag)
                    fresh_positions.append(position)
            if fresh_tags:
                block = self.similarity.tag_similarity_matrix(fresh_tags, index_tags)
                for block_i, position in enumerate(fresh_positions):
                    score_rows[position] = block[block_i]
            results: List[Dict[str, float]] = []
            for scores in score_rows:
                weights = np.where(scores > theta_filter, scores, 0.0)
                combined = weights @ degree_matrix
                results.append(
                    {
                        entity_id: float(value)
                        for entity_id, value in zip(self._entity_order, combined)
                        if value > 0.0
                    }
                )
            return results

    def _scalar_lookup_similar(self, tag: SubjectiveTag, theta_filter: float) -> Dict[str, float]:
        combined: Dict[str, float] = {}
        for index_tag, mapping in self._entries.items():
            score = self.similarity.tag_similarity(tag.pair, index_tag.pair)
            if score <= theta_filter:
                continue
            for entity_id, degree in mapping.items():
                combined[entity_id] = combined.get(entity_id, 0.0) + score * degree
        return combined

    def snippet(self, max_tags: int = 4, max_entities: int = 3) -> str:
        """A Table-1-style textual rendering (for examples and docs).

        Entries tie-break on entity id so the rendering is stable across
        runs even when degrees are exactly equal.
        """
        lines = []
        for tag in list(self._entries)[:max_tags]:
            entries = sorted(
                self._entries[tag].items(), key=lambda kv: (-kv[1], kv[0])
            )[:max_entities]
            rendered = ", ".join(f"{e} ({d:.2f})" for e, d in entries)
            lines.append(f"{tag.text:<22} -> {rendered}")
        return "\n".join(lines)
