"""The subjective tag index (Section 3.1, Table 1, Figure 1).

An inverted index mapping each subjective tag to the entities whose reviews
mention it, each with a *degree of truth* (Eq. 1):

    Deg_truth(tag, e) = log(|R_e| + 1) / |T_e^tag| * Σ_{t ∈ T_e^tag} Sim(tag, t)

where ``R_e`` is the entity's review set and ``T_e^tag`` the multiset of
review-extracted tags whose conceptual similarity to ``tag`` exceeds
``θ_index``.  The log factor privileges entities with more reviews (more
statistically significant evidence).  Degrees are optionally normalised by
``log(max reviews + 1)`` so displayed values land in [0, 1] like Table 1;
normalisation is a global constant and does not change any ranking.

Two backends compute the same numbers:

* ``"vectorized"`` (default) — review-tag occurrences are interned into a
  :class:`~repro.text.vocab.TagVocabulary` and stored as CSR-style id
  arrays; each ``add_tag`` is one kernel row against the vocabulary plus a
  few segmented reductions, and ``lookup_similar`` is a masked matvec over
  the incrementally built (index_tags × vocab) similarity matrix and the
  dense degree matrix.
* ``"scalar"`` — the original per-pair reference oracle, kept so tests and
  benchmarks can assert the two agree to ≤ 1e-9 on every score.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.tags import SubjectiveTag
from repro.obs import tracing as obs
from repro.text.similarity import ConceptualSimilarity, tag_pair
from repro.text.vocab import TagVocabulary

__all__ = ["IndexEntry", "SubjectiveTagIndex", "theta_from_peak"]

#: ``similarity_block`` keeps each query row bitwise independent of its
#: batch only up to ``_ROW_STATIONARY_MAX_ROWS`` (64) rows; lookup score
#: rows are computed in chunks of this size so the same query tag always
#: lands on the same bits, whatever rode along in the batch — and whatever
#: shard layout is answering (see :mod:`repro.core.shards`).
_QUERY_ROW_CHUNK = 64

#: LRU bound on cached per-query score rows.
_QUERY_ROW_CACHE_MAX = 4096


def theta_from_peak(theta_index: float, dynamic_margin: float, peak: float) -> float:
    """Dynamic-mode threshold from a tag's peak review-tag similarity.

    Shared between :class:`SubjectiveTagIndex` and the sharded wrapper so a
    threshold computed from the global peak (max over shard peaks) is the
    same float the single-shard oracle derives.
    """
    if peak <= 0.0:
        return theta_index
    return float(min(max(theta_index, peak - dynamic_margin), 0.95))


@dataclass
class IndexEntry:
    """One (entity, degree-of-truth) mapping under a tag."""

    entity_id: str
    degree: float


class SubjectiveTagIndex:
    """Inverted index over subjective tags with degrees of truth."""

    def __init__(
        self,
        similarity: ConceptualSimilarity,
        theta_index: float = 0.70,
        normalize_degrees: bool = True,
        review_count_mode: str = "matched",
        theta_mode: str = "static",
        dynamic_margin: float = 0.08,
        backend: str = "vectorized",
    ):
        if not 0.0 < theta_index < 1.0:
            raise ValueError("theta_index must lie in (0, 1)")
        if review_count_mode not in ("matched", "all"):
            raise ValueError("review_count_mode must be 'matched' or 'all'")
        if theta_mode not in ("static", "dynamic"):
            raise ValueError("theta_mode must be 'static' or 'dynamic'")
        if backend not in ("vectorized", "scalar"):
            raise ValueError("backend must be 'vectorized' or 'scalar'")
        self.similarity = similarity
        self.theta_index = theta_index
        self.normalize_degrees = normalize_degrees
        #: Interpretation of |R_e| in Eq. 1.  The equation's text reads "the
        #: set of entity e's reviews", but taken literally the degree becomes
        #: frequency-blind (one lucky mention scores like twenty), defeating
        #: the stated motivation that more supporting evidence should raise
        #: the degree.  ``"matched"`` (default) counts the reviews that
        #: contributed at least one matching tag — the reading under which
        #: the log weight does what the paper says it does.  ``"all"`` is the
        #: literal reading, kept for the ablation benchmark.
        self.review_count_mode = review_count_mode
        #: Section-7 future work: "adjust these [thresholds] dynamically
        #: depending on the semantics of the subjective tags being compared".
        #: In ``dynamic`` mode each tag's threshold adapts to how *generic*
        #: the tag is: a tag similar to many review tags (e.g. "good food")
        #: gets a threshold raised toward the top of its similarity
        #: distribution, a specific tag keeps the configured floor.
        self.theta_mode = theta_mode
        self.dynamic_margin = dynamic_margin
        self.backend = backend
        #: When this index is one shard of a :class:`~repro.core.shards.\
        #: ShardedTagIndex`, degree normalisation must use the *corpus-wide*
        #: review maximum, not the shard-local one; the wrapper keeps this in
        #: sync.  ``None`` means "derive from my own entities" (unsharded).
        self.shared_review_max: Optional[int] = None
        #: every distinct tag seen at registration or indexing time, interned
        #: to an integer id with kernel features resolved once.
        self.vocab = TagVocabulary(similarity)
        self._entries: Dict[SubjectiveTag, Dict[str, float]] = {}
        #: per-entity, per-review extracted tags, kept so new index tags can
        #: be mapped without re-reading reviews (the Figure 1 indexing round).
        self._entity_tags: Dict[str, List[List[SubjectiveTag]]] = {}
        self._entity_review_counts: Dict[str, int] = {}
        #: dynamic-mode per-tag thresholds, cached until the corpus changes.
        self._threshold_cache: Dict[SubjectiveTag, float] = {}
        # ----- matrix backing (vectorized backend) -----
        self._entity_order: List[str] = []
        self._entity_col: Dict[str, int] = {}
        self._occ_dirty = False
        self._occ_ids = np.zeros(0, dtype=np.intp)
        self._review_indptr = np.zeros(1, dtype=np.intp)
        self._review_entity = np.zeros(0, dtype=np.intp)
        self._occ_review = np.zeros(0, dtype=np.intp)
        self._review_counts_vec = np.zeros(0)
        #: similarity rows: one per index tag, each covering the vocabulary
        #: prefix that existed when the row was computed (rectangularised
        #: lazily by :meth:`_sync_sim_cols`).
        self._sim_rows: List[np.ndarray] = []
        self._sim_cols = 0
        self._degree_rows: List[np.ndarray] = []
        self._sim_cache: Optional[np.ndarray] = None
        self._degree_cache: Optional[np.ndarray] = None
        self._matrix_stale = False
        #: row-stationary (query tag × index tags) score rows, LRU-bounded;
        #: invalidated whenever the index tag list grows.
        self._query_row_cache: "OrderedDict[SubjectiveTag, np.ndarray]" = OrderedDict()
        self._query_rows_warm = False

    # ------------------------------------------------------------- population

    def register_entity(
        self,
        entity_id: str,
        review_tags: Sequence[Sequence[SubjectiveTag]],
    ) -> None:
        """Store an entity's per-review extracted tags (extraction output)."""
        per_review = [list(tags) for tags in review_tags]
        self._entity_tags[entity_id] = per_review
        self._entity_review_counts[entity_id] = len(per_review)
        if entity_id not in self._entity_col:
            self._entity_col[entity_id] = len(self._entity_order)
            self._entity_order.append(entity_id)
        for tags in per_review:
            self.vocab.intern_many(tags)
        self._occ_dirty = True
        self._threshold_cache.clear()

    def add_tag(self, tag: SubjectiveTag, _theta: Optional[float] = None) -> None:
        """Add an index tag and compute its entity mappings (Eq. 1).

        ``_theta`` lets the sharded wrapper pin the similarity threshold it
        derived from the *global* corpus (dynamic mode peaks are corpus-wide
        statistics a single shard cannot see).
        """
        if tag in self._entries:
            return
        if self.backend == "scalar":
            theta = self._threshold_for(tag) if _theta is None else _theta
            mapping: Dict[str, float] = {}
            for entity_id in self._entity_tags:
                degree = self._degree_of_truth(tag, entity_id, theta)
                if degree > 0.0:
                    mapping[entity_id] = degree
            self._entries[tag] = mapping
            return
        self._ensure_occ()
        self._ensure_matrix()
        self.vocab.intern(tag)
        row = self.vocab.similarity_rows([tag])[0]
        theta = self._threshold_for(tag, _row=row) if _theta is None else _theta
        degrees = self._degrees_from_row(row, theta)
        self._entries[tag] = {
            entity_id: float(degree)
            for entity_id, degree in zip(self._entity_order, degrees)
            if degree > 0.0
        }
        self._sim_rows.append(row)
        self._degree_rows.append(degrees)
        self._sim_cache = None
        self._degree_cache = None
        # Cached query rows span the old index tag list; drop them.
        self._query_row_cache.clear()
        self._query_rows_warm = False

    def _threshold_for(self, tag: SubjectiveTag, _row: Optional[np.ndarray] = None) -> float:
        """Per-tag similarity threshold (static, or semantics-adaptive).

        Dynamic mode compares the tag against each *distinct* review tag in
        the vocabulary — not every occurrence, which made each ``add_tag``
        O(total review tags) for no gain (duplicates cannot change the peak).
        The result is cached per tag until new entities are registered.
        """
        if self.theta_mode == "static":
            return self.theta_index
        cached = self._threshold_cache.get(tag)
        if cached is not None:
            return cached
        # Generic tags see many high-similarity neighbours; push the
        # threshold up toward (max - margin) so only close matches count.
        theta = theta_from_peak(
            self.theta_index, self.dynamic_margin, self.peak_similarity(tag, _row=_row)
        )
        self._threshold_cache[tag] = theta
        return theta

    def peak_similarity(self, tag: SubjectiveTag, _row: Optional[np.ndarray] = None) -> float:
        """Max positive similarity between ``tag`` and any distinct review tag.

        Returns 0.0 when the corpus is empty or nothing scores above zero.
        The sharded wrapper takes the max of the per-shard peaks — shards
        partition the occurrences, so that max equals the global peak.
        """
        self._ensure_occ()
        distinct = np.unique(self._occ_ids)
        if distinct.size == 0:
            return 0.0
        if _row is not None:
            sims = _row[distinct]
        elif self.backend == "vectorized":
            sims = self.vocab.similarity_rows([tag])[0][distinct]
        else:
            sims = np.array(
                [
                    self.similarity.tag_similarity(tag.pair, tag_pair(self.vocab.tag_of(i)))
                    for i in distinct
                ]
            )
        positive = sims[sims > 0.0]
        if positive.size == 0:
            return 0.0
        return float(positive.max())

    def build(self, tags: Iterable[SubjectiveTag]) -> "SubjectiveTagIndex":
        """Add many tags (one indexing round)."""
        for tag in tags:
            self.add_tag(tag)
        return self

    def _degree_of_truth(self, tag: SubjectiveTag, entity_id: str, theta: Optional[float] = None) -> float:
        """Scalar-path Eq. 1 for one (tag, entity) pair — the reference oracle."""
        theta = self.theta_index if theta is None else theta
        matched: List[float] = []
        matching_reviews = 0
        for review_tag_list in self._entity_tags[entity_id]:
            review_matched = False
            for review_tag in review_tag_list:
                score = self.similarity.tag_similarity(tag.pair, review_tag.pair)
                if score > theta:
                    matched.append(score)
                    review_matched = True
            matching_reviews += int(review_matched)
        if not matched:
            return 0.0
        if self.review_count_mode == "matched":
            review_count = matching_reviews
        else:
            review_count = self._entity_review_counts[entity_id]
        degree = math.log(review_count + 1) / len(matched) * sum(matched)
        if self.normalize_degrees:
            degree /= math.log(self._max_reviews() + 1)
        return degree

    def _max_reviews(self) -> int:
        """|R| of the best-reviewed entity (corpus-wide when sharded)."""
        if self.shared_review_max is not None:
            return self.shared_review_max
        return max(self._entity_review_counts.values(), default=1)

    # ------------------------------------------------------- matrix plumbing

    def _ensure_occ(self) -> None:
        """(Re)build the CSR occurrence arrays after corpus changes."""
        if not self._occ_dirty:
            return
        occ: List[int] = []
        indptr: List[int] = [0]
        review_entity: List[int] = []
        for entity_id in self._entity_order:
            col = self._entity_col[entity_id]
            for review in self._entity_tags.get(entity_id, ()):
                occ.extend(self.vocab.intern(tag) for tag in review)
                indptr.append(len(occ))
                review_entity.append(col)
        self._occ_ids = np.asarray(occ, dtype=np.intp)
        self._review_indptr = np.asarray(indptr, dtype=np.intp)
        self._review_entity = np.asarray(review_entity, dtype=np.intp)
        # Review index of each occurrence: the segment ids bincount needs for
        # per-review reductions that do not depend on the global layout.
        self._occ_review = np.repeat(
            np.arange(len(review_entity), dtype=np.intp), np.diff(self._review_indptr)
        )
        self._review_counts_vec = np.asarray(
            [float(self._entity_review_counts.get(eid, 0)) for eid in self._entity_order]
        )
        # Entities registered after a tag was added keep degree 0 for that
        # tag (mappings are computed at add time, matching the scalar path).
        n_entities = len(self._entity_order)
        self._degree_rows = [
            np.pad(row, (0, n_entities - len(row))) if len(row) < n_entities else row
            for row in self._degree_rows
        ]
        self._degree_cache = None
        self._occ_dirty = False

    def _ensure_matrix(self) -> None:
        """Fully rebuild similarity/degree rows after a snapshot restore."""
        if not self._matrix_stale:
            return
        tags = list(self._entries)
        if tags:
            block = self.vocab.similarity_rows(tags)
            self._sim_rows = [block[i] for i in range(len(tags))]
        else:
            self._sim_rows = []
        self._sim_cols = len(self.vocab)
        n_entities = len(self._entity_order)
        self._degree_rows = []
        for tag in tags:
            row = np.zeros(n_entities)
            for entity_id, degree in self._entries[tag].items():
                col = self._entity_col.get(entity_id)
                if col is not None:
                    row[col] = degree
            self._degree_rows.append(row)
        self._sim_cache = None
        self._degree_cache = None
        self._matrix_stale = False

    def _sync_sim_cols(self) -> None:
        """Rectangularise similarity rows up to the current vocabulary size.

        Rows are appended covering whatever vocabulary prefix existed at add
        time; one batched kernel call fills every missing suffix at once.
        """
        vocab_size = len(self.vocab)
        tags = list(self._entries)
        short = [i for i, row in enumerate(self._sim_rows) if len(row) < vocab_size]
        if not short:
            self._sim_cols = vocab_size
            return
        start = min(len(self._sim_rows[i]) for i in short)
        block = self.similarity.similarity_block(
            self.similarity.tag_features([tags[i] for i in short]),
            self.vocab.features_range(start, vocab_size),
        )
        for block_i, i in enumerate(short):
            row = self._sim_rows[i]
            self._sim_rows[i] = np.concatenate([row, block[block_i, len(row) - start :]])
        self._sim_cache = None
        self._sim_cols = vocab_size

    def _sim_matrix(self) -> np.ndarray:
        """The cached (index_tags × vocab) similarity matrix."""
        if self._sim_cache is None:
            self._sim_cache = (
                np.vstack(self._sim_rows) if self._sim_rows else np.zeros((0, self._sim_cols))
            )
        return self._sim_cache

    def _degree_matrix(self) -> np.ndarray:
        """The cached (index_tags × entities) degree-of-truth matrix."""
        if self._degree_cache is None:
            n_entities = len(self._entity_order)
            self._degree_cache = (
                np.vstack(self._degree_rows)
                if self._degree_rows
                else np.zeros((0, n_entities))
            )
        return self._degree_cache

    def _degrees_from_row(self, row: np.ndarray, theta: float) -> np.ndarray:
        """Eq. 1 for every entity at once, given a tag's vocab similarity row.

        Per-review reductions go through :func:`np.bincount` over the
        occurrence→review segment ids rather than differences of global
        prefix sums: bincount accumulates each bin independently in input
        order, so every per-review (and hence per-entity) float is bitwise
        identical no matter which other reviews share the arrays.  That is
        the property that lets an entity shard reproduce the single-shard
        oracle exactly.
        """
        scores = row[self._occ_ids]
        mask = scores > theta
        n_reviews = len(self._review_entity)
        per_review_hits = np.bincount(
            self._occ_review, weights=mask.astype(float), minlength=n_reviews
        )
        per_review_sums = np.bincount(
            self._occ_review, weights=np.where(mask, scores, 0.0), minlength=n_reviews
        )
        n_entities = len(self._entity_order)
        hits = np.bincount(self._review_entity, weights=per_review_hits, minlength=n_entities)
        sums = np.bincount(self._review_entity, weights=per_review_sums, minlength=n_entities)
        matched_reviews = np.bincount(
            self._review_entity,
            weights=(per_review_hits > 0).astype(float),
            minlength=n_entities,
        )
        counts = matched_reviews if self.review_count_mode == "matched" else self._review_counts_vec
        degrees = np.zeros(n_entities)
        nonzero = hits > 0
        degrees[nonzero] = np.log(counts[nonzero] + 1.0) / hits[nonzero] * sums[nonzero]
        if self.normalize_degrees:
            denom = math.log(self._max_reviews() + 1)
            if denom > 0.0:
                degrees /= denom
        return degrees

    def restore_snapshot(
        self,
        entries: Mapping[SubjectiveTag, Mapping[str, float]],
        entity_tags: Mapping[str, Sequence[Sequence[SubjectiveTag]]],
        entity_review_counts: Mapping[str, int],
    ) -> None:
        """Install deserialised state (used by :mod:`repro.core.index_io`)."""
        self._entries = {tag: dict(mapping) for tag, mapping in entries.items()}
        self._entity_tags = {
            entity_id: [list(tags) for tags in per_review]
            for entity_id, per_review in entity_tags.items()
        }
        self._entity_review_counts = {
            entity_id: int(count) for entity_id, count in entity_review_counts.items()
        }
        self._entity_order = []
        self._entity_col = {}
        for entity_id in self._entity_tags:
            self._entity_col[entity_id] = len(self._entity_order)
            self._entity_order.append(entity_id)
        for mapping in self._entries.values():
            for entity_id in mapping:
                if entity_id not in self._entity_col:
                    self._entity_col[entity_id] = len(self._entity_order)
                    self._entity_order.append(entity_id)
                    self._entity_review_counts.setdefault(entity_id, 0)
        for per_review in self._entity_tags.values():
            for tags in per_review:
                self.vocab.intern_many(tags)
        self.vocab.intern_many(self._entries)
        self._threshold_cache.clear()
        self._occ_dirty = True
        self._matrix_stale = True
        self._sim_cache = None
        self._degree_cache = None

    # ------------------------------------------------------------- persistence

    def snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """Materialised matrix state for :mod:`repro.core.snapshot`.

        Forces every lazy structure first so a load never has to re-run a
        similarity kernel.  Tags are stored as parallel aspect/opinion
        string arrays — round-tripping through ``SubjectiveTag.text`` would
        mis-split multi-word aspects.
        """
        self._ensure_occ()
        self._ensure_matrix()
        self._sync_sim_cols()
        vocab_tags = self.vocab.tags
        index_tags = list(self._entries)
        return {
            "vocab_aspects": np.asarray([t.aspect for t in vocab_tags], dtype=np.str_),
            "vocab_opinions": np.asarray([t.opinion for t in vocab_tags], dtype=np.str_),
            "index_aspects": np.asarray([t.aspect for t in index_tags], dtype=np.str_),
            "index_opinions": np.asarray([t.opinion for t in index_tags], dtype=np.str_),
            "entity_order": np.asarray(self._entity_order, dtype=np.str_),
            "entity_review_counts": np.asarray(
                [self._entity_review_counts.get(eid, 0) for eid in self._entity_order],
                dtype=np.int64,
            ),
            "occ_ids": np.asarray(self._occ_ids, dtype=np.int64),
            "review_indptr": np.asarray(self._review_indptr, dtype=np.int64),
            "review_entity": np.asarray(self._review_entity, dtype=np.int64),
            "sims": self._sim_matrix().astype(np.float64, copy=False),
            "degrees": self._degree_matrix().astype(np.float64, copy=False),
        }

    @classmethod
    def from_snapshot_arrays(
        cls,
        similarity: ConceptualSimilarity,
        arrays: Mapping[str, np.ndarray],
        *,
        theta_index: float = 0.70,
        normalize_degrees: bool = True,
        review_count_mode: str = "matched",
        theta_mode: str = "static",
        dynamic_margin: float = 0.08,
        shared_review_max: Optional[int] = None,
    ) -> "SubjectiveTagIndex":
        """Rebuild a vectorized index from :meth:`snapshot_arrays` output.

        The similarity and degree matrices are installed verbatim (bitwise —
        no kernel re-runs), and the per-review tag lists are reconstructed
        from the CSR occurrence arrays so later indexing rounds still work.
        """
        index = cls(
            similarity,
            theta_index=theta_index,
            normalize_degrees=normalize_degrees,
            review_count_mode=review_count_mode,
            theta_mode=theta_mode,
            dynamic_margin=dynamic_margin,
            backend="vectorized",
        )
        index.shared_review_max = None if shared_review_max is None else int(shared_review_max)
        vocab_tags = [
            SubjectiveTag(aspect=str(aspect), opinion=str(opinion))
            for aspect, opinion in zip(
                arrays["vocab_aspects"].tolist(), arrays["vocab_opinions"].tolist()
            )
        ]
        index.vocab.intern_many(vocab_tags)
        index_tags = [
            SubjectiveTag(aspect=str(aspect), opinion=str(opinion))
            for aspect, opinion in zip(
                arrays["index_aspects"].tolist(), arrays["index_opinions"].tolist()
            )
        ]
        index.vocab.intern_many(index_tags)
        entity_order = [str(eid) for eid in arrays["entity_order"].tolist()]
        counts = [int(count) for count in arrays["entity_review_counts"].tolist()]
        occ_ids = np.asarray(arrays["occ_ids"], dtype=np.intp)
        review_indptr = np.asarray(arrays["review_indptr"], dtype=np.intp)
        review_entity = np.asarray(arrays["review_entity"], dtype=np.intp)
        sims = np.asarray(arrays["sims"], dtype=np.float64)
        degrees = np.asarray(arrays["degrees"], dtype=np.float64)
        if sims.shape[0] != len(index_tags) or degrees.shape[0] != len(index_tags):
            raise ValueError("snapshot arrays disagree on index tag count")
        if sims.size and sims.shape[1] != len(index.vocab):
            raise ValueError("snapshot similarity matrix does not cover the vocabulary")
        if degrees.size and degrees.shape[1] != len(entity_order):
            raise ValueError("snapshot degree matrix does not cover the entities")
        if occ_ids.size and (occ_ids.min() < 0 or occ_ids.max() >= len(vocab_tags)):
            raise ValueError("snapshot occurrence ids fall outside the vocabulary")
        per_entity: Dict[str, List[List[SubjectiveTag]]] = {eid: [] for eid in entity_order}
        for review in range(len(review_entity)):
            start, stop = int(review_indptr[review]), int(review_indptr[review + 1])
            per_entity[entity_order[int(review_entity[review])]].append(
                [vocab_tags[int(occ)] for occ in occ_ids[start:stop]]
            )
        index._entity_tags = per_entity
        index._entity_review_counts = dict(zip(entity_order, counts))
        index._entity_order = list(entity_order)
        index._entity_col = {eid: col for col, eid in enumerate(entity_order)}
        index._occ_ids = occ_ids
        index._review_indptr = review_indptr
        index._review_entity = review_entity
        index._occ_review = np.repeat(
            np.arange(len(review_entity), dtype=np.intp), np.diff(review_indptr)
        )
        index._review_counts_vec = np.asarray([float(count) for count in counts])
        index._occ_dirty = False
        index._sim_rows = [sims[i] for i in range(sims.shape[0])]
        index._degree_rows = [degrees[i] for i in range(degrees.shape[0])]
        index._sim_cols = len(index.vocab)
        index._entries = {
            tag: {
                entity_order[col]: float(degrees[i, col])
                for col in np.nonzero(degrees[i] > 0.0)[0]
            }
            for i, tag in enumerate(index_tags)
        }
        index._matrix_stale = False
        index._sim_cache = None
        index._degree_cache = None
        return index

    # ---------------------------------------------------------------- queries

    @property
    def tags(self) -> List[SubjectiveTag]:
        return list(self._entries)

    @property
    def entity_order(self) -> List[str]:
        """Registered entity ids in matrix-column order."""
        return list(self._entity_order)

    def __contains__(self, tag: SubjectiveTag) -> bool:
        return tag in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, tag: SubjectiveTag) -> Dict[str, float]:
        """Exact-tag entity mapping (empty if the tag is not indexed)."""
        return dict(self._entries.get(tag, {}))

    def lookup_similar(self, tag: SubjectiveTag, theta_filter: float) -> Dict[str, float]:
        """Union of similar index tags' mappings, degrees scaled by similarity.

        Implements Algorithm 1 line 10: for an unknown tag, combine the
        mappings of all index tags with similarity above ``θ_filter``; an
        entity reached through several similar tags accumulates their
        contributions (the paper's worked example sums ``s1·0.76 + s2·0.94``
        for Anchovy).
        """
        return self.lookup_similar_batch([tag], theta_filter)[0]

    def lookup_similar_batch(
        self, tags: Sequence[SubjectiveTag], theta_filter: float
    ) -> List[Dict[str, float]]:
        """:meth:`lookup_similar` for many tags with one batched kernel pass.

        A multi-tag utterance issues a single call; similarity rows for tags
        already interned in the vocabulary come straight out of the cached
        (index_tags × vocab) matrix, the rest share one kernel block.
        """
        tags = list(tags)
        with obs.span("index.similarity", tags=len(tags), backend=self.backend):
            if self.backend == "scalar":
                return [self._scalar_lookup_similar(tag, theta_filter) for tag in tags]
            if not self._entries or not tags:
                return [{} for _ in tags]
            self._ensure_occ()
            self._ensure_matrix()
            results: List[Dict[str, float]] = []
            for scores in self._query_rows(tags):
                combined = self.combine_score_rows(scores, theta_filter)
                results.append(
                    {
                        entity_id: float(value)
                        for entity_id, value in zip(self._entity_order, combined)
                        if value > 0.0
                    }
                )
            return results

    def _query_rows(self, tags: Sequence[SubjectiveTag]) -> List[np.ndarray]:
        """One score row per query tag against the index tag list.

        Rows come from the LRU cache or a row-stationary kernel call
        (chunked at :data:`_QUERY_ROW_CHUNK`), never from columns of the
        cached (index_tags × vocab) matrix: that matrix is built in large
        batches whose gemm low bits depend on batch shape, while these rows
        must be bitwise reproducible however they are batched — it is what
        makes the sharded wrapper (which computes rows the same way and
        shares them across shards) byte-identical to this index.
        """
        index_tags = list(self._entries)
        if not self._query_rows_warm:
            # Queries hit the index tags themselves far more often than not;
            # pre-fill their rows in batched (still row-stationary) chunks,
            # which is much cheaper than one kernel call per tag later.
            for start in range(0, len(index_tags), _QUERY_ROW_CHUNK):
                chunk = index_tags[start : start + _QUERY_ROW_CHUNK]
                block = self.similarity.tag_similarity_matrix(chunk, index_tags)
                for offset, tag in enumerate(chunk):
                    self._query_row_cache[tag] = block[offset]
            self._query_rows_warm = True
        rows: List[Optional[np.ndarray]] = []
        fresh_tags: List[SubjectiveTag] = []
        fresh_positions: List[int] = []
        for position, tag in enumerate(tags):
            row = self._query_row_cache.get(tag)
            if row is not None:
                self._query_row_cache.move_to_end(tag)
                rows.append(row)
            else:
                rows.append(None)
                fresh_tags.append(tag)
                fresh_positions.append(position)
        for start in range(0, len(fresh_tags), _QUERY_ROW_CHUNK):
            chunk = fresh_tags[start : start + _QUERY_ROW_CHUNK]
            block = self.similarity.tag_similarity_matrix(chunk, index_tags)
            for offset, tag in enumerate(chunk):
                row = block[offset]
                rows[fresh_positions[start + offset]] = row
                self._query_row_cache[tag] = row
        while len(self._query_row_cache) > _QUERY_ROW_CACHE_MAX:
            self._query_row_cache.popitem(last=False)
        return rows

    def combine_score_rows(self, scores: np.ndarray, theta_filter: float) -> np.ndarray:
        """θ-filtered similarity-weighted sum of degree rows (Alg. 1 line 10).

        The accumulation visits index tags in tag order, one row at a time,
        instead of handing a dense matvec to BLAS: each entity's sum is then
        a fixed left-to-right reduction over the *same* tag sequence whatever
        the entity layout, so a shard holding a subset of the entity columns
        produces bitwise-identical degrees to the single-shard oracle.  It is
        also faster when few tags clear ``theta_filter`` — work is
        O(active_tags × entities), not O(index_tags × entities).
        """
        self._ensure_occ()
        self._ensure_matrix()
        degree_matrix = self._degree_matrix()
        combined = np.zeros(degree_matrix.shape[1])
        for tag_pos in np.nonzero(scores > theta_filter)[0]:
            combined += scores[tag_pos] * degree_matrix[tag_pos]
        return combined

    def _scalar_lookup_similar(self, tag: SubjectiveTag, theta_filter: float) -> Dict[str, float]:
        combined: Dict[str, float] = {}
        for index_tag, mapping in self._entries.items():
            score = self.similarity.tag_similarity(tag.pair, index_tag.pair)
            if score <= theta_filter:
                continue
            for entity_id, degree in mapping.items():
                combined[entity_id] = combined.get(entity_id, 0.0) + score * degree
        return combined

    def snippet(self, max_tags: int = 4, max_entities: int = 3) -> str:
        """A Table-1-style textual rendering (for examples and docs).

        Entries tie-break on entity id so the rendering is stable across
        runs even when degrees are exactly equal.
        """
        lines = []
        for tag in list(self._entries)[:max_tags]:
            entries = sorted(
                self._entries[tag].items(), key=lambda kv: (-kv[1], kv[0])
            )[:max_entities]
            rendered = ", ".join(f"{e} ({d:.2f})" for e, d in entries)
            lines.append(f"{tag.text:<22} -> {rendered}")
        return "\n".join(lines)
