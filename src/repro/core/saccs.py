"""The SACCS facade (Figure 1): extraction → indexing → filtering → ranking.

Bundles the whole system behind two entry points:

* :meth:`Saccs.answer` — full conversational path: parse the utterance
  through the dialog shim, extract subjective tags from it, probe/extend the
  index, filter and rank.
* :meth:`Saccs.answer_tags` — the evaluation path of Section 6.2, where the
  subjective tags are given directly.

Unknown query tags are answered in real time by combining similar index
tags (Algorithm 1 line 10) and are remembered in the *user tag history*;
:meth:`run_indexing_round` folds the history into the index, which is how
SACCS "adapts to new user needs".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.dialog import DialogSystem
from repro.core.extraction_engine import ExtractionEngine, ExtractionEngineConfig
from repro.core.extractor import OracleExtractor, TagExtractor
from repro.core.fraud import FakeReviewFilter
from repro.core.filtering import FilterConfig, filter_and_rank
from repro.core.index import SubjectiveTagIndex
from repro.core.shards import ShardedTagIndex
from repro.core.tags import SubjectiveTag
from repro.data.schema import Entity, Review
from repro.obs import tracing as obs
from repro.text.similarity import ConceptualSimilarity

__all__ = ["SaccsConfig", "Saccs", "IndexingRound", "PreparedIndex"]


@dataclass(frozen=True)
class IndexingRound:
    """Outcome of one :meth:`Saccs.run_indexing_round`.

    Carries the post-round :attr:`generation` (what caches key invalidation
    on) and the tags adopted this round.  Iterates/contains like the adopted
    tag list so existing ``tag in saccs.run_indexing_round()`` callers keep
    working.
    """

    generation: int
    added: Tuple[SubjectiveTag, ...]

    def __iter__(self):
        return iter(self.added)

    def __contains__(self, tag: object) -> bool:
        return tag in self.added

    def __len__(self) -> int:
        return len(self.added)


@dataclass(frozen=True)
class PreparedIndex:
    """A fully built replacement index waiting to be swapped in.

    The double buffer of the zero-downtime reindex protocol: built by
    :meth:`Saccs.prepare_rebuild` (no observable state change), installed by
    :meth:`Saccs.commit_rebuild` (a pointer swap plus the history fold —
    the only part that needs the serving lock).
    """

    index: Union[SubjectiveTagIndex, ShardedTagIndex]
    tags: Tuple[SubjectiveTag, ...]


@dataclass
class SaccsConfig:
    """Thresholds and ranking behaviour."""

    theta_index: float = 0.70
    theta_filter: float = 0.60
    aggregation: str = "mean"
    top_k: Optional[int] = 10
    mode: str = "soft"
    backfill: bool = True
    review_count_mode: str = "matched"
    theta_mode: str = "static"
    #: index similarity backend: ``"vectorized"`` (matrix kernel, default)
    #: or ``"scalar"`` (per-pair reference oracle, kept for equivalence
    #: testing and ablation benchmarks).
    backend: str = "vectorized"
    #: extraction pass: ``"bucketed"`` (corpus-wide length buckets through
    #: the :class:`~repro.core.extraction_engine.ExtractionEngine`, default)
    #: or ``"sequential"`` (one extractor call per review — the reference
    #: oracle the engine is tested against).
    extraction_mode: str = "bucketed"
    #: sentences per extraction length bucket (one encoder forward each).
    extraction_batch_sentences: int = 64
    #: pairing worker threads for the extraction engine (0/1 = serial).
    extraction_workers: int = 0
    #: cache extracted tags per review content hash, making
    #: :meth:`Saccs.rebuild_index` after small corpus edits incremental.
    extraction_cache: bool = True
    #: encoder precision for the tape-free fused inference path used by
    #: bucketed extraction: ``"float64"`` (bitwise-identical default),
    #: ``"float32"`` or ``"int8"`` (tolerance-bounded, faster).
    encoder_precision: str = "float64"
    #: entity shards for the tag index.  1 (default) keeps the plain
    #: :class:`SubjectiveTagIndex`; >1 routes entities by content hash into
    #: a :class:`~repro.core.shards.ShardedTagIndex` whose lookups are
    #: byte-identical to the single-shard oracle.
    index_shards: int = 1
    #: threads for the sharded lookup fan-out (<= 1 = in-line).
    index_lookup_workers: int = 0

    def __post_init__(self):
        if self.extraction_mode not in ("bucketed", "sequential"):
            raise ValueError("extraction_mode must be 'bucketed' or 'sequential'")
        if self.index_shards < 1:
            raise ValueError("index_shards must be >= 1")
        if self.index_shards > 1 and self.backend != "vectorized":
            raise ValueError("index_shards > 1 requires the vectorized backend")

    def filter_config(self) -> FilterConfig:
        return FilterConfig(
            aggregation=self.aggregation,
            top_k=self.top_k,
            mode=self.mode,
            backfill=self.backfill,
        )

    def extraction_config(self) -> ExtractionEngineConfig:
        return ExtractionEngineConfig(
            batch_sentences=self.extraction_batch_sentences,
            pairing_workers=self.extraction_workers,
            cache_enabled=self.extraction_cache,
            encoder_precision=self.encoder_precision,
        )


class Saccs:
    """Subjectivity Aware Conversational Search Service."""

    def __init__(
        self,
        entities: Sequence[Entity],
        reviews: Mapping[str, Sequence[Review]],
        extractor: Union[TagExtractor, OracleExtractor],
        similarity: ConceptualSimilarity,
        config: Optional[SaccsConfig] = None,
        review_filter: Optional["FakeReviewFilter"] = None,
    ):
        self.entities = list(entities)
        self.reviews = reviews
        self.extractor = extractor
        self.similarity = similarity
        self.config = config or SaccsConfig()
        self.dialog = DialogSystem(self.entities)
        self.index = self._make_index()
        #: optional fake-review defence (Section 7 future work); suspicious
        #: reviews are dropped before extraction.
        self.review_filter = review_filter
        #: the corpus-wide batched extraction pass (buckets, pairing pool,
        #: content-hash cache).  Shared with the serving runtime so utterance
        #: micro-batches reuse the same buckets and ``/metrics`` sees the
        #: cache counters.
        self.extraction_engine = ExtractionEngine(extractor, self.config.extraction_config())
        self.user_tag_history: List[SubjectiveTag] = []
        #: monotonically increasing counter, bumped by every indexing round
        #: (including :meth:`build_index`).  Serving layers stamp cached
        #: rankings with the generation they were computed under, so a bump
        #: deterministically invalidates everything derived from the old
        #: index state.
        self.index_generation = 0
        self._ingested = False

    # ------------------------------------------------------------- ingestion

    def _make_index(self) -> Union[SubjectiveTagIndex, ShardedTagIndex]:
        """A fresh, empty index honouring the configured shard count."""
        if self.config.index_shards > 1:
            return ShardedTagIndex(
                self.similarity,
                num_shards=self.config.index_shards,
                theta_index=self.config.theta_index,
                review_count_mode=self.config.review_count_mode,
                theta_mode=self.config.theta_mode,
                lookup_workers=self.config.index_lookup_workers,
            )
        return SubjectiveTagIndex(
            self.similarity,
            theta_index=self.config.theta_index,
            review_count_mode=self.config.review_count_mode,
            theta_mode=self.config.theta_mode,
            backend=self.config.backend,
        )

    def ingest_reviews(self) -> None:
        """Extract subjective tags from every review (the extractor pass).

        With ``extraction_mode="bucketed"`` (default) the whole corpus goes
        through the :class:`ExtractionEngine` — sentences from all entities
        flattened, length-bucketed, batch-tagged and paired, with per-review
        results cached by content hash.  ``"sequential"`` keeps the original
        one-review-at-a-time loop as the equivalence oracle.
        """
        self._register_corpus(self.index)
        self._ingested = True

    def _register_corpus(
        self,
        index: Union[SubjectiveTagIndex, ShardedTagIndex],
        pace: Optional[Callable[[], None]] = None,
    ) -> None:
        """Extract the current corpus and register it into ``index``.

        ``pace`` (if given) is called between per-entity work units so a
        background rebuild can yield the interpreter to serving threads —
        without it a rebuild holds the GIL for full switch-interval
        stretches and search tail latency spikes.
        """
        entity_reviews = []
        for entity in self.entities:
            reviews = list(self.reviews.get(entity.entity_id, []))
            if self.review_filter is not None:
                reviews = self.review_filter.filter_reviews(reviews)
            entity_reviews.append((entity.entity_id, reviews))
        if self.config.extraction_mode == "sequential":
            extracted = [
                (entity_id, [self.extractor.extract_review(review) for review in reviews])
                for entity_id, reviews in entity_reviews
            ]
        else:
            extracted = self.extraction_engine.extract_corpus(entity_reviews)
        if pace is not None:
            pace()
        with self.extraction_engine.timings.span("register"):
            for entity_id, per_review in extracted:
                index.register_entity(entity_id, per_review)
                if pace is not None:
                    pace()

    def build_index(self, tags: Iterable[SubjectiveTag]) -> None:
        """Index an initial tag set (ingesting reviews first if needed)."""
        if not self._ingested:
            self.ingest_reviews()
        self.index.build(tags)
        self.index_generation += 1

    def rebuild_index(self, reviews: Optional[Mapping[str, Sequence[Review]]] = None) -> None:
        """Re-extract the (possibly updated) corpus and rebuild the index.

        The incremental path for corpus changes: pass the new ``reviews``
        mapping (or ``None`` to re-read the current one) and the extraction
        engine's content-hash cache makes the pass re-tag only new or edited
        reviews.  The indexed tag set — initial build tags plus every tag
        adopted from the user history — is preserved, rebuilt against the
        fresh extraction, and the generation bumped so serving caches
        invalidate deterministically.
        """
        prepared = self.prepare_rebuild(reviews)
        self.index = prepared.index
        self._ingested = True
        self.index_generation += 1

    def prepare_rebuild(
        self,
        reviews: Optional[Mapping[str, Sequence[Review]]] = None,
        indexed_tags: Optional[Sequence[SubjectiveTag]] = None,
        pace: Optional[Callable[[], None]] = None,
    ) -> PreparedIndex:
        """Build a replacement index off to the side (the double buffer).

        Extraction and degree computation run against a *fresh* index object
        while :attr:`index` keeps serving; nothing a reader can observe
        changes until the caller swaps the result in (either
        :meth:`commit_rebuild` or :meth:`rebuild_index`'s inline swap).
        Concurrent-serving callers snapshot ``indexed_tags`` under their own
        lock before calling and hold that lock only for the swap.

        ``pace`` is called between rebuild work units (per entity, per
        indexed tag).  Background rebuilds pass a short sleep here so the
        build never monopolises the interpreter for a full GIL switch
        interval — the same idea as rate-limited compactions in LSM stores.
        """
        if reviews is not None:
            self.reviews = reviews
        if indexed_tags is None:
            indexed_tags = list(self.index.tags)
        fresh = self._make_index()
        self._register_corpus(fresh, pace=pace)
        if pace is None:
            fresh.build(indexed_tags)
        else:
            for tag in indexed_tags:
                fresh.add_tag(tag)
                pace()
        return PreparedIndex(index=fresh, tags=tuple(indexed_tags))

    def commit_rebuild(self, prepared: PreparedIndex) -> IndexingRound:
        """Swap a prepared index in and fold the accumulated tag history.

        The atomic half of the background-reindex protocol: one pointer
        swap, then the user tags that arrived *while the buffer was being
        built* are folded in (the same sorted-set fold as
        :meth:`run_indexing_round`) and the generation is bumped once.
        """
        self.index = prepared.index
        self._ingested = True
        added = []
        for tag in sorted(set(self.user_tag_history)):
            if tag not in self.index:
                self.index.add_tag(tag)
                added.append(tag)
        self.user_tag_history.clear()
        self.index_generation += 1
        return IndexingRound(self.index_generation, tuple(added))

    def adopt_index(
        self, index: Union[SubjectiveTagIndex, ShardedTagIndex]
    ) -> None:
        """Install a warm-started index (snapshot load) without re-extracting.

        Marks the corpus as ingested so a later :meth:`build_index` call
        with the same tag set no-ops instead of re-running extraction.
        """
        self.index = index
        self._ingested = True
        self.index_generation += 1

    def run_indexing_round(self) -> IndexingRound:
        """Fold the user tag history into the index (Figure 1's loop).

        Folding is idempotent — a tag already adopted by an earlier round is
        skipped — and processes the history as a *sorted set*, so the index
        ends up in the same state (same tag insertion order, bit-identical
        degree matrices) no matter the order concurrent requests appended
        their unknown tags.  Every round bumps :attr:`index_generation`,
        even when nothing new was adopted.
        """
        added = []
        for tag in sorted(set(self.user_tag_history)):
            if tag not in self.index:
                self.index.add_tag(tag)
                added.append(tag)
        self.user_tag_history.clear()
        self.index_generation += 1
        return IndexingRound(self.index_generation, tuple(added))

    # --------------------------------------------------------------- queries

    def _tag_set(self, tag: SubjectiveTag) -> Dict[str, float]:
        """Algorithm 1 lines 7–10: exact lookup or similar-tag combination."""
        return self._tag_sets([tag])[0]

    def _tag_sets(self, tags: Sequence[SubjectiveTag]) -> List[Dict[str, float]]:
        """Per-tag entity sets for a whole utterance with one batched lookup."""
        return self._tag_sets_many([tags])[0]

    def _tag_sets_many(
        self, batches: Sequence[Sequence[SubjectiveTag]]
    ) -> List[List[Dict[str, float]]]:
        """Per-tag entity sets for a *batch of requests* with one shared fold.

        Known tags read straight from the index; every distinct unknown tag
        across the whole batch shares a single
        :meth:`SubjectiveTagIndex.lookup_similar_batch` call (one kernel
        pass, duplicates computed once) instead of per-tag index scans.
        Unknown tags are remembered in the user tag history per occurrence,
        in request order — exactly what sequential per-request calls would
        record.  Because the kernel evaluates small blocks row-stationary,
        each request's mappings are bit-identical to the ones a sequential
        :meth:`answer_tags` call would produce, which is what lets the
        serving layer micro-batch concurrent requests safely.
        """
        with obs.span("index.lookup", requests=len(batches)):
            tag_sets: List[List[Optional[Dict[str, float]]]] = [
                [None] * len(tags) for tags in batches
            ]
            distinct: List[SubjectiveTag] = []
            distinct_of: Dict[SubjectiveTag, int] = {}
            placements: List[Tuple[int, int, int]] = []
            for request, tags in enumerate(batches):
                for position, tag in enumerate(tags):
                    if tag in self.index:
                        tag_sets[request][position] = self.index.lookup(tag)
                    else:
                        self.user_tag_history.append(tag)
                        slot = distinct_of.get(tag)
                        if slot is None:
                            slot = distinct_of[tag] = len(distinct)
                            distinct.append(tag)
                        placements.append((request, position, slot))
            obs.annotate(unknown_tags=len(distinct))
            if distinct:
                combined = self.index.lookup_similar_batch(
                    distinct, self.config.theta_filter
                )
                for request, position, slot in placements:
                    tag_sets[request][position] = combined[slot]
            return tag_sets

    def answer_tags(
        self,
        tags: Sequence[SubjectiveTag],
        api_entity_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Rank entities for a set of subjective tags (evaluation entry point)."""
        if api_entity_ids is None:
            api_entity_ids = [entity.entity_id for entity in self.entities]
        tag_sets = self._tag_sets(tags)
        with obs.span("rank.filter_and_rank", queries=1):
            return filter_and_rank(api_entity_ids, tag_sets, self.config.filter_config())

    def answer_many(
        self,
        tag_lists: Sequence[Sequence[SubjectiveTag]],
        api_entity_ids: Optional[Sequence[str]] = None,
    ) -> List[List[Tuple[str, float]]]:
        """Rank entities for many tag queries with one shared index fold.

        Bit-identical to calling :meth:`answer_tags` once per list, in
        order, but unknown tags across the whole batch are resolved with a
        single batched ``lookup_similar`` pass (duplicates deduplicated) —
        the entry point `repro.serve`'s micro-batching scheduler drains
        concurrent requests into.
        """
        if api_entity_ids is None:
            api_entity_ids = [entity.entity_id for entity in self.entities]
        config = self.config.filter_config()
        per_request = self._tag_sets_many([list(tags) for tags in tag_lists])
        with obs.span("rank.filter_and_rank", queries=len(per_request)):
            return [
                filter_and_rank(api_entity_ids, tag_sets, config)
                for tag_sets in per_request
            ]

    def answer(self, utterance: str) -> List[Tuple[str, float]]:
        """Full conversational path for a natural-language utterance."""
        api_entities = self.dialog.search(utterance)
        api_ids = [entity.entity_id for entity in api_entities]
        if isinstance(self.extractor, TagExtractor):
            parsed = self.dialog.recognizer.parse(utterance)
            tags = self.extractor.extract(parsed.tokens)
        else:
            raise TypeError(
                "answer() needs a TagExtractor (the oracle extractor has no "
                "gold labels for arbitrary utterances); use answer_tags()"
            )
        tag_sets = self._tag_sets(tags)
        with obs.span("rank.filter_and_rank", queries=1):
            return filter_and_rank(api_ids, tag_sets, self.config.filter_config())
