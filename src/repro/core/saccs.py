"""The SACCS facade (Figure 1): extraction → indexing → filtering → ranking.

Bundles the whole system behind two entry points:

* :meth:`Saccs.answer` — full conversational path: parse the utterance
  through the dialog shim, extract subjective tags from it, probe/extend the
  index, filter and rank.
* :meth:`Saccs.answer_tags` — the evaluation path of Section 6.2, where the
  subjective tags are given directly.

Unknown query tags are answered in real time by combining similar index
tags (Algorithm 1 line 10) and are remembered in the *user tag history*;
:meth:`run_indexing_round` folds the history into the index, which is how
SACCS "adapts to new user needs".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.dialog import DialogSystem
from repro.core.extractor import OracleExtractor, TagExtractor
from repro.core.fraud import FakeReviewFilter
from repro.core.filtering import FilterConfig, filter_and_rank
from repro.core.index import SubjectiveTagIndex
from repro.core.tags import SubjectiveTag
from repro.data.schema import Entity, Review
from repro.text.similarity import ConceptualSimilarity

__all__ = ["SaccsConfig", "Saccs"]


@dataclass
class SaccsConfig:
    """Thresholds and ranking behaviour."""

    theta_index: float = 0.70
    theta_filter: float = 0.60
    aggregation: str = "mean"
    top_k: Optional[int] = 10
    mode: str = "soft"
    backfill: bool = True
    review_count_mode: str = "matched"
    theta_mode: str = "static"
    #: index similarity backend: ``"vectorized"`` (matrix kernel, default)
    #: or ``"scalar"`` (per-pair reference oracle, kept for equivalence
    #: testing and ablation benchmarks).
    backend: str = "vectorized"

    def filter_config(self) -> FilterConfig:
        return FilterConfig(
            aggregation=self.aggregation,
            top_k=self.top_k,
            mode=self.mode,
            backfill=self.backfill,
        )


class Saccs:
    """Subjectivity Aware Conversational Search Service."""

    def __init__(
        self,
        entities: Sequence[Entity],
        reviews: Mapping[str, Sequence[Review]],
        extractor: Union[TagExtractor, OracleExtractor],
        similarity: ConceptualSimilarity,
        config: Optional[SaccsConfig] = None,
        review_filter: Optional["FakeReviewFilter"] = None,
    ):
        self.entities = list(entities)
        self.reviews = reviews
        self.extractor = extractor
        self.similarity = similarity
        self.config = config or SaccsConfig()
        self.dialog = DialogSystem(self.entities)
        self.index = SubjectiveTagIndex(
            similarity,
            theta_index=self.config.theta_index,
            review_count_mode=self.config.review_count_mode,
            theta_mode=self.config.theta_mode,
            backend=self.config.backend,
        )
        #: optional fake-review defence (Section 7 future work); suspicious
        #: reviews are dropped before extraction.
        self.review_filter = review_filter
        self.user_tag_history: List[SubjectiveTag] = []
        self._ingested = False

    # ------------------------------------------------------------- ingestion

    def ingest_reviews(self) -> None:
        """Extract subjective tags from every review (the extractor pass)."""
        for entity in self.entities:
            reviews = list(self.reviews.get(entity.entity_id, []))
            if self.review_filter is not None:
                reviews = self.review_filter.filter_reviews(reviews)
            per_review: List[List[SubjectiveTag]] = []
            for review in reviews:
                per_review.append(self.extractor.extract_review(review))
            self.index.register_entity(entity.entity_id, per_review)
        self._ingested = True

    def build_index(self, tags: Iterable[SubjectiveTag]) -> None:
        """Index an initial tag set (ingesting reviews first if needed)."""
        if not self._ingested:
            self.ingest_reviews()
        self.index.build(tags)

    def run_indexing_round(self) -> List[SubjectiveTag]:
        """Fold the user tag history into the index (Figure 1's loop)."""
        added = []
        for tag in self.user_tag_history:
            if tag not in self.index:
                self.index.add_tag(tag)
                added.append(tag)
        self.user_tag_history.clear()
        return added

    # --------------------------------------------------------------- queries

    def _tag_set(self, tag: SubjectiveTag) -> Dict[str, float]:
        """Algorithm 1 lines 7–10: exact lookup or similar-tag combination."""
        return self._tag_sets([tag])[0]

    def _tag_sets(self, tags: Sequence[SubjectiveTag]) -> List[Dict[str, float]]:
        """Per-tag entity sets for a whole utterance with one batched lookup.

        Known tags read straight from the index; all unknown tags share a
        single :meth:`SubjectiveTagIndex.lookup_similar_batch` call (one
        kernel pass) instead of per-tag index scans, and are remembered in
        the user tag history in utterance order.
        """
        tag_sets: List[Optional[Dict[str, float]]] = []
        unknown_tags: List[SubjectiveTag] = []
        unknown_positions: List[int] = []
        for position, tag in enumerate(tags):
            if tag in self.index:
                tag_sets.append(self.index.lookup(tag))
            else:
                self.user_tag_history.append(tag)
                tag_sets.append(None)
                unknown_tags.append(tag)
                unknown_positions.append(position)
        if unknown_tags:
            combined = self.index.lookup_similar_batch(unknown_tags, self.config.theta_filter)
            for position, mapping in zip(unknown_positions, combined):
                tag_sets[position] = mapping
        return tag_sets

    def answer_tags(
        self,
        tags: Sequence[SubjectiveTag],
        api_entity_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Rank entities for a set of subjective tags (evaluation entry point)."""
        if api_entity_ids is None:
            api_entity_ids = [entity.entity_id for entity in self.entities]
        return filter_and_rank(api_entity_ids, self._tag_sets(tags), self.config.filter_config())

    def answer(self, utterance: str) -> List[Tuple[str, float]]:
        """Full conversational path for a natural-language utterance."""
        api_entities = self.dialog.search(utterance)
        api_ids = [entity.entity_id for entity in api_entities]
        if isinstance(self.extractor, TagExtractor):
            parsed = self.dialog.recognizer.parse(utterance)
            tags = self.extractor.extract(parsed.tokens)
        else:
            raise TypeError(
                "answer() needs a TagExtractor (the oracle extractor has no "
                "gold labels for arbitrary utterances); use answer_tags()"
            )
        return filter_and_rank(api_ids, self._tag_sets(tags), self.config.filter_config())
