"""Task-oriented dialog shim: intent recognition, slot filling, search API.

SACCS assumes "the underlying dialog system is already equipped with intent
recognition and slot filling" (Section 3); this module provides that
substrate.  Intent detection and slot filling are pattern/lexicon-based —
deliberately simple, since the paper treats them as solved inputs — and the
search API filters the entity catalog by the *objective* slots only,
returning results ordered by star rating (what Yelp would do), oblivious to
any subjective phrases in the utterance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.data.schema import Entity
from repro.text.tokenize import word_tokenize

__all__ = ["ParsedUtterance", "IntentRecognizer", "SearchApi", "DialogSystem"]

_SEARCH_MARKERS = {
    "restaurant", "restaurants", "eat", "dinner", "lunch", "place", "table",
    "food", "reservation", "hotel", "stay",
}
_KNOWN_CUISINES = {"italian", "french", "japanese", "mexican", "indian", "chinese", "thai"}
_KNOWN_CITIES = {"montreal", "lyon", "melbourne", "paris", "tokyo", "trento", "sydney"}


@dataclass
class ParsedUtterance:
    """Intent + objective slots extracted from a user utterance."""

    text: str
    tokens: List[str]
    intent: str
    slots: Dict[str, str] = field(default_factory=dict)


class IntentRecognizer:
    """Keyword-based intent recognition + slot filling."""

    def parse(self, utterance: str) -> ParsedUtterance:
        """Detect the intent and fill cuisine/city slots."""
        tokens = word_tokenize(utterance)
        token_set = set(tokens)
        intent = "searchRestaurant" if token_set & _SEARCH_MARKERS else "unknown"
        slots: Dict[str, str] = {}
        for token in tokens:
            if token in _KNOWN_CUISINES and "cuisine" not in slots:
                slots["cuisine"] = token
            if token in _KNOWN_CITIES and "city" not in slots:
                slots["city"] = token
        return ParsedUtterance(text=utterance, tokens=tokens, intent=intent, slots=slots)


class SearchApi:
    """The objective search service (the Yelp/TripAdvisor stand-in).

    Filters by slots and orders by stars; knows nothing about subjectivity.
    """

    def __init__(self, entities: Sequence[Entity]):
        self.entities = list(entities)

    def search(self, slots: Dict[str, str]) -> List[Entity]:
        """Entities matching every provided slot, best-rated first."""
        results = [
            entity
            for entity in self.entities
            if ("cuisine" not in slots or entity.cuisine == slots["cuisine"])
            and ("city" not in slots or entity.city == slots["city"])
        ]
        results.sort(key=lambda e: (-e.stars, e.entity_id))
        return results


class DialogSystem:
    """Intent recognizer + search API, bundled (Algorithm 1's ``search_api``)."""

    def __init__(self, entities: Sequence[Entity]):
        self.recognizer = IntentRecognizer()
        self.api = SearchApi(entities)

    def search(self, utterance: str) -> List[Entity]:
        """Parse the utterance and return objectively-filtered entities."""
        parsed = self.recognizer.parse(utterance)
        if parsed.intent != "searchRestaurant":
            return []
        return self.api.search(parsed.slots)
