"""Task-oriented dialog shim: intent recognition, slot filling, search API.

SACCS assumes "the underlying dialog system is already equipped with intent
recognition and slot filling" (Section 3); this module provides that
substrate.  Utterance understanding itself lives in
:mod:`repro.conversation.classify` — :class:`IntentRecognizer` is the same
:class:`~repro.conversation.classify.QueryClassifier` under its historical
name, so intent, slots and the subjectivity route all come from one code
path.  The search API filters the entity catalog by the *objective* slots
only, returning results ordered by star rating (what Yelp would do),
oblivious to any subjective phrases in the utterance.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.conversation.classify import ParsedUtterance, QueryClassifier
from repro.data.schema import Entity

__all__ = ["ParsedUtterance", "IntentRecognizer", "SearchApi", "DialogSystem"]


class IntentRecognizer(QueryClassifier):
    """Historical name for :class:`~repro.conversation.classify.QueryClassifier`.

    Kept as a distinct class (not a bare alias) so ``isinstance`` checks and
    reprs in older call sites keep reading naturally.
    """


class SearchApi:
    """The objective search service (the Yelp/TripAdvisor stand-in).

    Filters by slots and orders by stars; knows nothing about subjectivity.
    """

    def __init__(self, entities: Sequence[Entity]):
        self.entities = list(entities)

    def search(self, slots: Dict[str, str]) -> List[Entity]:
        """Entities matching every provided slot, best-rated first."""
        results = [
            entity
            for entity in self.entities
            if ("cuisine" not in slots or entity.cuisine == slots["cuisine"])
            and ("city" not in slots or entity.city == slots["city"])
        ]
        results.sort(key=lambda e: (-e.stars, e.entity_id))
        return results


class DialogSystem:
    """Intent recognizer + search API, bundled (Algorithm 1's ``search_api``)."""

    def __init__(self, entities: Sequence[Entity]):
        self.recognizer = IntentRecognizer()
        self.api = SearchApi(entities)

    def search(self, utterance: str) -> List[Entity]:
        """Parse the utterance and return objectively-filtered entities."""
        parsed = self.recognizer.parse(utterance)
        if parsed.intent != "searchRestaurant":
            return []
        return self.api.search(parsed.slots)
