"""Entity-sharded subjective tag index (ROADMAP open item 1).

:class:`ShardedTagIndex` splits the *entity* dimension of
:class:`~repro.core.index.SubjectiveTagIndex` into N independent shards — a
stable content hash of the entity id picks the shard, every index tag is
added to every shard, and a lookup fans one θ-filtered combine per shard
(optionally over a thread pool) before a deterministic shard-order merge.

The merge is **byte-identical** to the single-shard oracle because every
float the shards produce is layout-independent by construction:

* degrees (Eq. 1) reduce per review via ``bincount`` segment sums, so an
  entity's degree never depends on which other entities share its arrays;
* score rows come from shard 0's row-stationary query-row cache — the
  identical code path (and bits) the single-shard oracle uses — and are
  shared by all shards;
* the combine kernel accumulates active tag rows in tag order, one row at a
  time, instead of a shape-dependent BLAS matvec;
* corpus-wide statistics a shard cannot see — the review-count maximum used
  for degree normalisation, dynamic-θ peaks — are computed by the wrapper
  and pinned onto the shards.

Sharding is the unit of parallelism (lookup fan-out here, one shard set per
process later) and the unit of persistence: :mod:`repro.core.snapshot`
writes one ``.npz`` per shard.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.index import SubjectiveTagIndex, theta_from_peak
from repro.core.tags import SubjectiveTag
from repro.obs import tracing as obs
from repro.text.similarity import ConceptualSimilarity

__all__ = ["ShardedTagIndex", "shard_of"]


def shard_of(entity_id: str, num_shards: int) -> int:
    """Stable entity→shard routing: first 8 bytes of sha256, mod N.

    ``hash()`` is seed-randomised per process, which would scatter entities
    across different shards on every restart and break snapshot reloads;
    a content hash keeps placement stable forever (same keying idea as the
    PR-3 ``ExtractionCache``).
    """
    digest = hashlib.sha256(entity_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


class ShardedTagIndex:
    """N independent entity shards behind the ``SubjectiveTagIndex`` query API."""

    def __init__(
        self,
        similarity: ConceptualSimilarity,
        num_shards: int,
        theta_index: float = 0.70,
        normalize_degrees: bool = True,
        review_count_mode: str = "matched",
        theta_mode: str = "static",
        dynamic_margin: float = 0.08,
        lookup_workers: int = 0,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.similarity = similarity
        self.num_shards = num_shards
        self.theta_index = theta_index
        self.normalize_degrees = normalize_degrees
        self.review_count_mode = review_count_mode
        self.theta_mode = theta_mode
        self.dynamic_margin = dynamic_margin
        #: threads for the per-shard combine fan-out; <= 1 means in-line.
        self.lookup_workers = lookup_workers
        self.backend = "sharded"
        self.shards: List[SubjectiveTagIndex] = [
            SubjectiveTagIndex(
                similarity,
                theta_index=theta_index,
                normalize_degrees=normalize_degrees,
                review_count_mode=review_count_mode,
                theta_mode=theta_mode,
                dynamic_margin=dynamic_margin,
                backend="vectorized",
            )
            for _ in range(num_shards)
        ]
        self._tag_order: Dict[SubjectiveTag, int] = {}
        self._entity_review_counts: Dict[str, int] = {}
        self._max_reviews = 0
        #: fused read view: the shards' degree matrices concatenated along
        #: the entity axis (shard-0 columns first), rebuilt lazily after any
        #: registration or tag add.  The in-line lookup path combines over
        #: this one matrix — one kernel pass instead of a per-shard fan-out,
        #: and byte-identical to both, since the combine is elementwise.
        self._fused_degrees: Optional[np.ndarray] = None
        self._fused_entity_order: List[str] = []

    # ------------------------------------------------------------- population

    def shard_of(self, entity_id: str) -> int:
        return shard_of(entity_id, self.num_shards)

    def register_entity(
        self,
        entity_id: str,
        review_tags: Sequence[Sequence[SubjectiveTag]],
    ) -> None:
        """Route an entity's extracted reviews to its shard."""
        self.shards[self.shard_of(entity_id)].register_entity(entity_id, review_tags)
        self._entity_review_counts[entity_id] = len(review_tags)
        self._max_reviews = max(self._entity_review_counts.values(), default=0)
        shared = max(self._max_reviews, 1)
        for shard in self.shards:
            shard.shared_review_max = shared
        self._fused_degrees = None

    def add_tag(self, tag: SubjectiveTag) -> None:
        """Add an index tag to every shard under one global threshold."""
        if tag in self._tag_order:
            return
        theta: Optional[float] = None
        if self.theta_mode == "dynamic":
            # θ depends on the corpus-wide peak similarity; shards partition
            # the occurrences, so the max of shard peaks is the global peak.
            peak = max(shard.peak_similarity(tag) for shard in self.shards)
            theta = theta_from_peak(self.theta_index, self.dynamic_margin, peak)
        for shard in self.shards:
            shard.add_tag(tag, _theta=theta)
        self._tag_order[tag] = len(self._tag_order)
        self._fused_degrees = None

    def build(self, tags: Iterable[SubjectiveTag]) -> "ShardedTagIndex":
        """Add many tags (one indexing round)."""
        for tag in tags:
            self.add_tag(tag)
        return self

    # ---------------------------------------------------------------- queries

    @property
    def tags(self) -> List[SubjectiveTag]:
        return list(self._tag_order)

    @property
    def entity_order(self) -> List[str]:
        """All entity ids in shard order (shard 0's columns, then shard 1's…)."""
        ordered: List[str] = []
        for shard in self.shards:
            ordered.extend(shard.entity_order)
        return ordered

    def __contains__(self, tag: SubjectiveTag) -> bool:
        return tag in self._tag_order

    def __len__(self) -> int:
        return len(self._tag_order)

    def lookup(self, tag: SubjectiveTag) -> Dict[str, float]:
        """Exact-tag entity mapping (empty if the tag is not indexed)."""
        merged: Dict[str, float] = {}
        for shard in self.shards:
            merged.update(shard.lookup(tag))
        return merged

    def lookup_similar(self, tag: SubjectiveTag, theta_filter: float) -> Dict[str, float]:
        return self.lookup_similar_batch([tag], theta_filter)[0]

    def lookup_similar_batch(
        self, tags: Sequence[SubjectiveTag], theta_filter: float
    ) -> List[Dict[str, float]]:
        """Algorithm 1 line 10 fanned over the shards.

        Score rows (query tag vs every index tag) are computed once here —
        not per shard — then each shard runs the layout-independent combine
        kernel over its own entity columns and the merge walks shards in
        order.  Values are bitwise equal to the single-shard oracle; only
        the dict insertion order differs (shard order vs global column
        order), which no ranking consumer observes.
        """
        tags = list(tags)
        with obs.span(
            "index.similarity", tags=len(tags), backend=self.backend, shards=self.num_shards
        ):
            if not self._tag_order or not tags:
                return [{} for _ in tags]
            score_rows = self._score_rows(tags)
            if self.lookup_workers > 1 and self.num_shards > 1:
                per_shard = self._fan_out(score_rows, theta_filter)
                results: List[Dict[str, float]] = []
                for position in range(len(tags)):
                    merged: Dict[str, float] = {}
                    for shard, combined_rows in zip(self.shards, per_shard):
                        for entity_id, value in zip(
                            shard.entity_order, combined_rows[position].tolist()
                        ):
                            if value > 0.0:
                                merged[entity_id] = value
                    results.append(merged)
                return results
            # In-line path: one combine over the fused degree matrix.
            fused, entity_order = self._fused_view()
            results = []
            for scores in score_rows:
                combined = np.zeros(fused.shape[1])
                for tag_pos in np.nonzero(scores > theta_filter)[0]:
                    combined += scores[tag_pos] * fused[tag_pos]
                results.append(
                    {
                        entity_id: value
                        for entity_id, value in zip(entity_order, combined.tolist())
                        if value > 0.0
                    }
                )
            return results

    def _fused_view(self):
        """The concatenated (index_tags × all entities) degree matrix."""
        if self._fused_degrees is None:
            blocks: List[np.ndarray] = []
            order: List[str] = []
            for shard in self.shards:
                shard._ensure_occ()
                shard._ensure_matrix()
                blocks.append(shard._degree_matrix())
                order.extend(shard.entity_order)
            self._fused_degrees = (
                np.concatenate(blocks, axis=1)
                if blocks
                else np.zeros((len(self._tag_order), 0))
            )
            self._fused_entity_order = order
        return self._fused_degrees, self._fused_entity_order

    def _score_rows(self, tags: Sequence[SubjectiveTag]) -> List[np.ndarray]:
        """Per-query-tag similarity rows over the index tags.

        Delegates to shard 0's row-stationary query-row cache: every shard
        indexes the same tag list in the same order, so shard 0's rows are
        *the* rows — computed by the identical code path the single-shard
        oracle uses, which is what keeps the merge byte-identical.
        """
        return self.shards[0]._query_rows(tags)

    def _fan_out(
        self, score_rows: List[np.ndarray], theta_filter: float
    ) -> List[List[np.ndarray]]:
        """Run the combine kernel on every shard, threaded when configured."""

        def combine(shard: SubjectiveTagIndex) -> List[np.ndarray]:
            return [shard.combine_score_rows(row, theta_filter) for row in score_rows]

        if self.lookup_workers > 1 and self.num_shards > 1:
            workers = min(self.lookup_workers, self.num_shards)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(combine, self.shards))
        return [combine(shard) for shard in self.shards]

    def snippet(self, max_tags: int = 4, max_entities: int = 3) -> str:
        """Table-1-style rendering (mirrors the unsharded method)."""
        lines = []
        for tag in list(self._tag_order)[:max_tags]:
            entries = sorted(self.lookup(tag).items(), key=lambda kv: (-kv[1], kv[0]))
            rendered = ", ".join(f"{e} ({d:.2f})" for e, d in entries[:max_entities])
            lines.append(f"{tag.text:<22} -> {rendered}")
        return "\n".join(lines)
