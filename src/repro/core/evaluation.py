"""Evaluation metrics for tagging (span F1) and pairing (classification).

Tagging follows the NER convention the paper cites: an aspect/opinion counts
as correctly extracted only if its exact token span matches the ground truth
(Section 6.3).  F1 is micro-averaged over aspect and opinion chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.text.labels import labels_to_spans

__all__ = ["SpanF1", "span_f1", "ClassificationReport", "classification_report"]


@dataclass
class SpanF1:
    """Micro precision/recall/F1 over exact-match chunks."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    predicted: int
    gold: int


def span_f1(
    gold_labels: Sequence[Sequence[str]],
    predicted_labels: Sequence[Sequence[str]],
) -> SpanF1:
    """Exact-span micro F1 over aspect + opinion chunks.

    Both inputs are lists of IOB label sequences, aligned sentence by
    sentence.
    """
    if len(gold_labels) != len(predicted_labels):
        raise ValueError("gold and predicted sentence counts differ")
    true_positives = 0
    num_predicted = 0
    num_gold = 0
    for gold, predicted in zip(gold_labels, predicted_labels):
        if len(gold) != len(predicted):
            raise ValueError("label sequences misaligned within a sentence")
        gold_aspects, gold_opinions = labels_to_spans(gold)
        pred_aspects, pred_opinions = labels_to_spans(predicted)
        for gold_spans, pred_spans in (
            (gold_aspects, pred_aspects),
            (gold_opinions, pred_opinions),
        ):
            gold_set = set(gold_spans)
            pred_set = set(pred_spans)
            true_positives += len(gold_set & pred_set)
            num_predicted += len(pred_set)
            num_gold += len(gold_set)
    precision = true_positives / num_predicted if num_predicted else 0.0
    recall = true_positives / num_gold if num_gold else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return SpanF1(precision, recall, f1, true_positives, num_predicted, num_gold)


@dataclass
class ClassificationReport:
    """Binary classification metrics (the pairing evaluation's columns)."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    support: int

    def row(self, name: str) -> str:
        return (
            f"{name:<22} acc={self.accuracy * 100:6.2f} p={self.precision * 100:6.2f} "
            f"r={self.recall * 100:6.2f} f1={self.f1 * 100:6.2f}"
        )


def classification_report(gold: Sequence[int], predicted: Sequence[int]) -> ClassificationReport:
    """Accuracy / precision / recall / F1 with 1 as the positive class."""
    if len(gold) != len(predicted):
        raise ValueError("gold and predicted lengths differ")
    if not gold:
        raise ValueError("empty evaluation set")
    tp = fp = fn = tn = 0
    for g, p in zip(gold, predicted):
        if p == 1 and g == 1:
            tp += 1
        elif p == 1 and g == 0:
            fp += 1
        elif p == 0 and g == 1:
            fn += 1
        else:
            tn += 1
    accuracy = (tp + tn) / len(gold)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return ClassificationReport(accuracy, precision, recall, f1, len(gold))
