"""Index benchmark (``repro bench-index``): backends, shards, snapshots.

Four sections over one seeded synthetic workload, recorded to
``BENCH_index.json`` and guarded by ``benchmarks/check_bench.py``:

* **backend** — the scalar per-pair oracle vs the vectorized matrix kernel
  on index build + ``lookup_similar`` throughput (the PR-2 cells, kept so
  the committed record stays shape-compatible);
* **shards** — the sharded index at 1/4/8 entity shards against the dense
  legacy combine (fresh similarity row + full ``weights @ degree_matrix``
  gemv per query, the pre-shard serving path).  The sharded cells win on
  the active-tag accumulation kernel plus the wrapper's score-row cache;
  every sharded result is checked byte-identical to the single-index
  oracle before any speedup is reported.  ``check_bench`` floors the
  ``shard8`` cell at 1.5×;
* **snapshot** — ``save_snapshot`` / ``load_snapshot`` round-trip timing
  against the cold register+build path, with a ranking-identity witness
  (the ``repro serve --snapshot-dir`` warm-start win);
* **availability** — closed-loop searches racing a double-buffered
  ``reindex(background=True)`` through the serving runtime: p99 latency
  during the rebuild over idle p99 (``availability_ratio``), which
  ``check_bench`` caps at 3.0 — the zero-downtime claim, measured.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.index import SubjectiveTagIndex
from repro.core.shards import ShardedTagIndex
from repro.core.snapshot import load_snapshot, save_snapshot
from repro.core.tags import SubjectiveTag
from repro.text import ConceptualSimilarity, restaurant_lexicon

__all__ = ["run_index_benchmark", "write_index_record"]

Progress = Optional[Callable[[str], None]]


def _say(progress: Progress, message: str) -> None:
    if progress is not None:
        progress(message)


def build_index_workload(
    seed: int,
    entities: int,
    review_tags: int,
    index_tags: int,
    queries: int,
    distinct_variants: Optional[int] = None,
):
    """A seeded synthetic corpus plus a serving-shaped query stream.

    Queries alternate between known index tags and unseen variants drawn
    from a bounded pool (``distinct_variants``, default ``queries // 10``):
    real query streams repeat, which is what the wrapper's score-row cache
    exists for.
    """
    rng = np.random.default_rng(seed)
    lexicon = restaurant_lexicon()
    aspects = sorted(lexicon.aspect_surface_index())
    opinions = sorted(op.text for op in lexicon.opinions)
    pool = [SubjectiveTag(a, o) for a in aspects for o in opinions]
    chosen = [pool[i] for i in rng.choice(len(pool), size=index_tags, replace=False)]
    occurrences = [pool[i] for i in rng.choice(len(pool), size=review_tags)]
    per_entity = max(1, review_tags // entities)
    reviews_per_entity = max(1, per_entity // 2)
    corpus: List[Tuple[str, List[List[SubjectiveTag]]]] = []
    cursor = 0
    for e in range(entities):
        mine = occurrences[cursor : cursor + per_entity]
        cursor += per_entity
        reviews = [list(mine[r::reviews_per_entity]) for r in range(reviews_per_entity)]
        corpus.append((f"entity-{e:04d}", [r for r in reviews if r]))
    if distinct_variants is None:
        distinct_variants = max(1, queries // 10)
    variant_bases = [
        chosen[i] for i in rng.choice(len(chosen), size=distinct_variants, replace=False)
    ]
    variants = [SubjectiveTag(t.aspect, f"really {t.opinion}") for t in variant_bases]
    stream: List[SubjectiveTag] = []
    for i in range(queries):
        if i % 2 == 0:
            stream.append(chosen[int(rng.integers(len(chosen)))])
        else:
            stream.append(variants[int(rng.integers(len(variants)))])
    sizes = {
        "entities": entities,
        "review_tags": review_tags,
        "index_tags": index_tags,
        "queries": queries,
        "distinct_unseen_variants": distinct_variants,
    }
    return sizes, corpus, chosen, stream


def _build(index, corpus, tags) -> float:
    start = time.perf_counter()
    for entity_id, reviews in corpus:
        index.register_entity(entity_id, reviews)
    index.build(tags)
    return time.perf_counter() - start


def _time_lookups(index, queries, theta_filter) -> Tuple[List[Dict[str, float]], float]:
    start = time.perf_counter()
    lookups = [index.lookup_similar(q, theta_filter=theta_filter) for q in queries]
    return lookups, time.perf_counter() - start


def _dense_legacy_lookups(
    index: SubjectiveTagIndex, queries, theta_filter
) -> Tuple[List[Dict[str, float]], float]:
    """The pre-shard serving path, re-timed on today's index state.

    Per query: the similarity row (cached matrix column when the tag is
    interned, one fresh kernel call otherwise — no cross-query row reuse)
    followed by the dense ``weights @ degree_matrix`` combine over every
    index tag, active or not.
    """
    index._ensure_occ()
    index._ensure_matrix()
    index._sync_sim_cols()
    degree_matrix = index._degree_matrix()
    index_tags = list(index._entries)
    entity_order = index._entity_order
    results: List[Dict[str, float]] = []
    start = time.perf_counter()
    for tag in queries:
        tag_id = index.vocab.id_of(tag)
        if tag_id is not None and tag_id < index._sim_cols:
            scores = index._sim_matrix()[:, tag_id]
        else:
            scores = index.similarity.tag_similarity_matrix([tag], index_tags)[0]
        weights = np.where(scores > theta_filter, scores, 0.0)
        combined = weights @ degree_matrix
        results.append(
            {
                entity_id: float(value)
                for entity_id, value in zip(entity_order, combined)
                if value > 0.0
            }
        )
    return results, time.perf_counter() - start


def _backend_section(sizes, corpus, tags, queries, theta_filter, progress: Progress):
    """Scalar oracle vs vectorized kernel (the historical record cells)."""
    _say(progress, "backend: timing the vectorized kernel")
    vec_index = SubjectiveTagIndex(
        ConceptualSimilarity(restaurant_lexicon()), backend="vectorized"
    )
    vec_build = _build(vec_index, corpus, tags)
    vec_lookups, vec_lookup = _time_lookups(vec_index, queries, theta_filter)
    _say(progress, "backend: timing the scalar oracle (capped query slice)")
    scalar_queries = queries[: max(1, len(queries) // 4)]
    scale = len(queries) / len(scalar_queries)
    sca_index = SubjectiveTagIndex(
        ConceptualSimilarity(restaurant_lexicon()), backend="scalar"
    )
    sca_build = _build(sca_index, corpus, tags)
    sca_lookups, sca_lookup_raw = _time_lookups(sca_index, scalar_queries, theta_filter)
    sca_lookup = sca_lookup_raw * scale
    max_delta = 0.0
    for vec_map, sca_map in zip(vec_lookups, sca_lookups):
        assert set(vec_map) == set(sca_map)
        for entity_id, value in sca_map.items():
            max_delta = max(max_delta, abs(vec_map[entity_id] - value))
    return vec_index, vec_lookups, {
        "scalar": {
            "build_seconds": sca_build,
            "lookup_seconds": sca_lookup,
            "lookup_queries_timed": len(scalar_queries),
        },
        "vectorized": {"build_seconds": vec_build, "lookup_seconds": vec_lookup},
        "speedup": {
            "build": sca_build / vec_build,
            "lookup": sca_lookup / vec_lookup,
            "total": (sca_build + sca_lookup) / (vec_build + vec_lookup),
        },
        "max_abs_delta": max_delta,
    }


def _shard_section(
    corpus,
    tags,
    queries,
    theta_filter,
    oracle_index: SubjectiveTagIndex,
    oracle_lookups,
    shard_counts: Sequence[int],
    lookup_workers: int,
    progress: Progress,
):
    """Sharded cells vs the dense legacy combine, identity-checked."""
    _say(progress, "shards: timing the dense legacy combine baseline")
    dense_lookups, dense_seconds = _dense_legacy_lookups(
        oracle_index, queries, theta_filter
    )
    dense_delta = 0.0
    for dense_map, oracle_map in zip(dense_lookups, oracle_lookups):
        assert set(dense_map) == set(oracle_map)
        for entity_id, value in oracle_map.items():
            dense_delta = max(dense_delta, abs(dense_map[entity_id] - value))
    cells: Dict[str, Dict[str, object]] = {}
    identical = True
    built_indexes: Dict[int, ShardedTagIndex] = {}
    for count in shard_counts:
        _say(progress, f"shards: building + timing {count} shard(s)")
        index = ShardedTagIndex(
            ConceptualSimilarity(restaurant_lexicon()),
            num_shards=count,
            lookup_workers=lookup_workers,
        )
        build_seconds = _build(index, corpus, tags)
        lookups, lookup_seconds = _time_lookups(index, queries, theta_filter)
        identical = identical and all(
            mine == theirs for mine, theirs in zip(lookups, oracle_lookups)
        )
        cells[f"shard{count}"] = {
            "build_seconds": build_seconds,
            "lookup_seconds": lookup_seconds,
            "lookup_speedup_vs_dense": dense_seconds / lookup_seconds,
        }
        built_indexes[count] = index
    return built_indexes, {
        "baseline": {
            "kind": "dense legacy combine (fresh row + full gemv per query)",
            "lookup_seconds": dense_seconds,
            "max_abs_delta_vs_oracle": dense_delta,
        },
        "cells": cells,
        "identical_to_oracle": identical,
        "lookup_workers": lookup_workers,
    }


def _snapshot_section(
    index: ShardedTagIndex,
    cold_build_seconds: float,
    queries,
    theta_filter,
    progress: Progress,
):
    """Save → load round-trip vs the cold build, with a ranking witness."""
    sample = queries[:: max(1, len(queries) // 50)]
    expected = [index.lookup_similar(q, theta_filter=theta_filter) for q in sample]
    with tempfile.TemporaryDirectory(prefix="bench-index-snapshot-") as tmp:
        _say(progress, "snapshot: saving + reloading the sharded index")
        start = time.perf_counter()
        manifest = save_snapshot(index, tmp)
        save_seconds = time.perf_counter() - start
        start = time.perf_counter()
        restored = load_snapshot(tmp, ConceptualSimilarity(restaurant_lexicon()))
        load_seconds = time.perf_counter() - start
    restored_lookups = [
        restored.lookup_similar(q, theta_filter=theta_filter) for q in sample
    ]
    return {
        "cold_build_seconds": cold_build_seconds,
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
        "speedup": {"warm_start": cold_build_seconds / load_seconds},
        "snapshot_sha256": manifest["snapshot_sha256"],
        "rankings_identical": restored_lookups == expected,
        "sample_queries": len(sample),
    }


def _availability_section(
    seed: int,
    entities: int,
    mean_reviews: float,
    samples: int,
    rebuild_rounds: int,
    shards: int,
    progress: Progress,
):
    """p99 search latency during a background rebuild over idle p99."""
    from repro.core.extractor import OracleExtractor
    from repro.core.saccs import Saccs, SaccsConfig
    from repro.data import WorldConfig, build_world
    from repro.serve import SaccsRuntime, ServeConfig

    _say(progress, "availability: building the serving world")
    world = build_world(
        WorldConfig.small(seed=seed, num_entities=entities, mean_reviews=mean_reviews)
    )
    saccs = Saccs(
        world.entities,
        world.reviews,
        OracleExtractor(),
        ConceptualSimilarity(restaurant_lexicon()),
        SaccsConfig(index_shards=shards),
    )
    dims = [SubjectiveTag.from_text(d.name) for d in world.dimensions]
    saccs.build_index(dims)
    # cache_size=0 + a multi-tag query mix with unseen variants: every
    # search does real index work, so the idle p99 reflects the serving
    # path rather than a cache hit, and the during-rebuild ratio measures
    # interference instead of scheduler noise.
    config = ServeConfig(max_batch_size=1, max_wait_ms=0.0, workers=2, cache_size=0)
    queries = [
        [dims[(i + j * 3) % len(dims)] for j in range(4)]
        + [SubjectiveTag(dims[(i + 9) % len(dims)].aspect, "really wonderful")]
        for i in range(24)
    ]
    idle: List[float] = []
    during: List[float] = []
    generations: List[int] = []
    with SaccsRuntime(saccs, config) as runtime:
        for i in range(32):  # warm-up: matrix caches, thread pools
            runtime.search(queries[i % len(queries)])
        _say(progress, f"availability: {samples} idle searches")
        for i in range(samples):
            start = time.perf_counter()
            runtime.search(queries[i % len(queries)])
            idle.append(time.perf_counter() - start)
        done = threading.Event()
        failures: List[BaseException] = []

        def rebuild() -> None:
            try:
                for _ in range(rebuild_rounds):
                    runtime.reindex(background=True)
            except BaseException as exc:  # noqa: BLE001 - recorded, re-raised below
                failures.append(exc)
            finally:
                done.set()

        _say(
            progress,
            f"availability: searches racing {rebuild_rounds} background rebuild(s)",
        )
        thread = threading.Thread(
            target=rebuild, name="bench-index-reindex", daemon=True
        )
        thread.start()
        i = 0
        while not done.is_set() or len(during) < 32:
            start = time.perf_counter()
            response = runtime.search(queries[i % len(queries)])
            during.append(time.perf_counter() - start)
            generations.append(response.generation)
            i += 1
            if done.is_set() and len(during) >= samples:
                break
        thread.join()
        if failures:
            raise failures[0]
        final_generation = runtime.generation
    idle_p99 = float(np.percentile(idle, 99))
    during_p99 = float(np.percentile(during, 99))
    monotonic = all(a <= b for a, b in zip(generations, generations[1:]))
    return {
        "world": {"entities": entities, "mean_reviews": mean_reviews, "shards": shards},
        "idle_p99_ms": idle_p99 * 1000.0,
        "rebuild_p99_ms": during_p99 * 1000.0,
        "availability_ratio": during_p99 / idle_p99,
        "idle_samples": len(idle),
        "rebuild_samples": len(during),
        "rebuild_rounds": rebuild_rounds,
        "generation_monotonic": monotonic,
        "final_generation": final_generation,
    }


def run_index_benchmark(
    seed: int = 11,
    entities: int = 200,
    review_tags: int = 2000,
    index_tags: int = 500,
    queries: int = 1000,
    theta_filter: float = 0.6,
    shard_counts: Sequence[int] = (1, 4, 8),
    lookup_workers: int = 0,
    availability_entities: int = 120,
    availability_reviews: float = 10.0,
    availability_samples: int = 300,
    rebuild_rounds: int = 3,
    progress: Progress = None,
) -> Dict[str, object]:
    """Run every section and return the ``BENCH_index.json`` payload."""
    sizes, corpus, tags, stream = build_index_workload(
        seed, entities, review_tags, index_tags, queries
    )
    oracle_index, oracle_lookups, backend = _backend_section(
        sizes, corpus, tags, stream, theta_filter, progress
    )
    built, shard_section = _shard_section(
        corpus,
        tags,
        stream,
        theta_filter,
        oracle_index,
        oracle_lookups,
        shard_counts,
        lookup_workers,
        progress,
    )
    snapshot_source = built[max(built)]
    snapshot = _snapshot_section(
        snapshot_source,
        shard_section["cells"][f"shard{max(built)}"]["build_seconds"],
        stream,
        theta_filter,
        progress,
    )
    availability = _availability_section(
        seed,
        availability_entities,
        availability_reviews,
        availability_samples,
        rebuild_rounds,
        shards=4,
        progress=progress,
    )
    payload: Dict[str, object] = {
        "workload": sizes,
        "theta_filter": theta_filter,
        **backend,
        "shards": shard_section,
        "snapshot": snapshot,
        "availability": availability,
    }
    return payload


def write_index_record(payload: Dict[str, object], output: Optional[str] = None) -> Path:
    """Persist the payload as ``BENCH_index.json`` (same contract as the
    benchmark harness: ``REPRO_BENCH_OUTPUT_DIR`` overrides the directory)."""
    from repro.utils.env import environment_info

    record = dict(payload)
    record.setdefault("environment", environment_info())
    if output is not None:
        path = Path(output)
    else:
        out_dir = Path(os.environ.get("REPRO_BENCH_OUTPUT_DIR", "."))
        path = out_dir / "BENCH_index.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    data = json.dumps(record, indent=2, sort_keys=True) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(data)
    os.replace(tmp, path)
    return path
