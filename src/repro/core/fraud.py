"""Fake-review filtering (implements the paper's Section-7 future work).

"We have to differentiate between truthful and fake reviews in order to
provide a transparent search experience."  The filter scores each review of
an entity against three signatures of astroturfing:

* **duplication** — maximum token-shingle Jaccard similarity against the
  entity's other reviews (ghost-writers recycle templates);
* **extremity** — all mentioned dimensions share one sign at near-maximal
  strength (organic reviews mix praise and gripes);
* **uniformity** — low lexical diversity across the review's sentences.

The combined suspicion score is thresholded; ``Saccs.ingest_reviews`` can
take the filter and drop suspicious reviews before indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.data.schema import Review

__all__ = ["FraudFilterConfig", "FakeReviewFilter"]


@dataclass
class FraudFilterConfig:
    """Scoring weights and decision threshold."""

    shingle_size: int = 3
    duplication_weight: float = 0.55
    extremity_weight: float = 0.30
    uniformity_weight: float = 0.15
    #: reviews scoring above this are dropped.
    threshold: float = 0.62


def _shingles(tokens: Sequence[str], size: int) -> Set[Tuple[str, ...]]:
    if len(tokens) < size:
        return {tuple(tokens)} if tokens else set()
    return {tuple(tokens[i : i + size]) for i in range(len(tokens) - size + 1)}


def _jaccard(a: Set, b: Set) -> float:
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


class FakeReviewFilter:
    """Scores and filters an entity's reviews for astroturf signatures."""

    def __init__(self, config: FraudFilterConfig | None = None):
        self.config = config or FraudFilterConfig()

    # ------------------------------------------------------------- signals

    def duplication_score(self, review: Review, others: Sequence[Review]) -> float:
        """Max shingle-Jaccard against the entity's other reviews."""
        own = _shingles(review.tokens, self.config.shingle_size)
        best = 0.0
        for other in others:
            if other.review_id == review.review_id:
                continue
            best = max(best, _jaccard(own, _shingles(other.tokens, self.config.shingle_size)))
        return best

    def extremity_score(self, review: Review) -> float:
        """1.0 when every mention shares one sign at near-max strength."""
        polarities = list(review.mentions.values())
        if not polarities:
            return 0.0
        signs = {np.sign(p) for p in polarities if p != 0}
        if len(signs) != 1:
            return 0.0
        return float(np.mean([min(abs(p) / 0.85, 1.0) for p in polarities]))

    def uniformity_score(self, review: Review) -> float:
        """1 - type/token ratio: recycled phrasing scores high."""
        tokens = review.tokens
        if not tokens:
            return 0.0
        return 1.0 - len(set(tokens)) / len(tokens)

    # ------------------------------------------------------------ decisions

    def suspicion(self, review: Review, others: Sequence[Review]) -> float:
        """Weighted combination of the three signals, in [0, 1]."""
        config = self.config
        return (
            config.duplication_weight * self.duplication_score(review, others)
            + config.extremity_weight * self.extremity_score(review)
            + config.uniformity_weight * self.uniformity_score(review)
        )

    def filter_reviews(self, reviews: Sequence[Review]) -> List[Review]:
        """The subset of ``reviews`` judged organic."""
        return [
            review
            for review in reviews
            if self.suspicion(review, reviews) <= self.config.threshold
        ]

    def flagged(self, reviews: Sequence[Review]) -> List[str]:
        """Review ids judged fake (for precision/recall evaluation)."""
        return [
            review.review_id
            for review in reviews
            if self.suspicion(review, reviews) > self.config.threshold
        ]
