"""The subjective-tag extraction pipeline (Figure 2): tagging then pairing.

An extractor turns token sequences into :class:`SubjectiveTag` sets.  The
two stages are pluggable:

* **tagging** — a trained :class:`~repro.core.tagger.SequenceTagger`, or the
  gold labels (``OracleExtractor``) for experiments that isolate indexing
  quality from extraction quality;
* **pairing** — any pairer: a single heuristic, the union of heuristics, or
  the trained discriminative classifier.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.heuristics import PairingHeuristic
from repro.core.pairing import PairingClassifier, PairingInstance
from repro.core.tagger import SequenceTagger
from repro.core.tags import SubjectiveTag
from repro.data.schema import LabeledSentence, Review, Span
from repro.text.labels import labels_to_spans

__all__ = ["Pairer", "HeuristicPairer", "ClassifierPairer", "TagExtractor", "OracleExtractor"]

Pair = Tuple[Span, Span]


class Pairer:
    """Interface: select pairs among the cross product of extracted spans."""

    def pair(
        self,
        tokens: Sequence[str],
        aspect_spans: Sequence[Span],
        opinion_spans: Sequence[Span],
    ) -> Set[Pair]:
        raise NotImplementedError


class HeuristicPairer(Pairer):
    """Union of one or more heuristics' proposals."""

    def __init__(self, heuristics: Sequence[PairingHeuristic]):
        if not heuristics:
            raise ValueError("need at least one heuristic")
        self.heuristics = list(heuristics)

    def pair(self, tokens, aspect_spans, opinion_spans):
        out: Set[Pair] = set()
        for heuristic in self.heuristics:
            out |= heuristic.pairs(tokens, aspect_spans, opinion_spans)
        return out


class ClassifierPairer(Pairer):
    """The trained discriminative classifier as a pairer.

    Classifies every candidate in the cross product; if it rejects all
    candidates for an aspect, the aspect stays unpaired (matching the
    classifier semantics of Section 5.2).
    """

    def __init__(self, classifier: PairingClassifier, threshold: float = 0.5):
        self.classifier = classifier
        self.threshold = threshold

    def pair(self, tokens, aspect_spans, opinion_spans):
        if not aspect_spans or not opinion_spans:
            return set()
        candidates = [
            PairingInstance(
                tokens=tuple(tokens),
                aspect_spans=tuple(aspect_spans),
                opinion_spans=tuple(opinion_spans),
                candidate=(a, o),
            )
            for a in aspect_spans
            for o in opinion_spans
        ]
        probs = self.classifier.predict_proba(candidates)
        return {
            candidate.candidate
            for candidate, prob in zip(candidates, probs)
            if prob >= self.threshold
        }


class TagExtractor:
    """Tagger + pairer → subjective tags."""

    def __init__(self, tagger: SequenceTagger, pairer: Pairer):
        self.tagger = tagger
        self.pairer = pairer

    # ------------------------------------------------------------- extraction

    def extract(self, tokens: Sequence[str]) -> List[SubjectiveTag]:
        """Subjective tags of one tokenised sentence/utterance."""
        return self.extract_batch([list(tokens)])[0]

    def extract_batch(self, sentences: Sequence[Sequence[str]]) -> List[List[SubjectiveTag]]:
        """Batched extraction (tagger runs once over the whole batch)."""
        if not sentences:
            return []
        labels = self.tagger.predict([list(s) for s in sentences])
        out: List[List[SubjectiveTag]] = []
        for tokens, label_seq in zip(sentences, labels):
            aspect_spans, opinion_spans = labels_to_spans(label_seq)
            out.append(_pairs_to_tags(tokens, self.pairer.pair(tokens, aspect_spans, opinion_spans)))
        return out

    def extract_review(self, review: Review) -> List[SubjectiveTag]:
        """All tags across a review's sentences (deduplicated, order-stable)."""
        tags: List[SubjectiveTag] = []
        seen = set()
        for sentence_tags in self.extract_batch([s.tokens for s in review.sentences]):
            for tag in sentence_tags:
                if tag not in seen:
                    seen.add(tag)
                    tags.append(tag)
        return tags


class OracleExtractor:
    """Gold-label extractor: reads the generator's own annotations.

    Used to isolate indexing/filtering quality from extraction quality (and
    as the upper bound in ablations).  Only works on
    :class:`LabeledSentence` inputs — arbitrary token lists have no gold.
    """

    def extract_sentence(self, sentence: LabeledSentence) -> List[SubjectiveTag]:
        tags = []
        for aspect_text, opinion_text in sentence.pair_phrases():
            tags.append(SubjectiveTag(aspect=aspect_text, opinion=opinion_text))
        return tags

    def extract_review(self, review: Review) -> List[SubjectiveTag]:
        tags: List[SubjectiveTag] = []
        seen = set()
        for sentence in review.sentences:
            for tag in self.extract_sentence(sentence):
                if tag not in seen:
                    seen.add(tag)
                    tags.append(tag)
        return tags


def _pairs_to_tags(tokens: Sequence[str], pairs: Iterable[Pair]) -> List[SubjectiveTag]:
    tags: List[SubjectiveTag] = []
    seen = set()
    for (a_start, a_end), (o_start, o_end) in sorted(pairs):
        aspect = " ".join(tokens[a_start:a_end])
        opinion = " ".join(tokens[o_start:o_end])
        if not aspect or not opinion:
            continue
        tag = SubjectiveTag(aspect=aspect, opinion=opinion)
        if tag not in seen:
            seen.add(tag)
            tags.append(tag)
    return tags
