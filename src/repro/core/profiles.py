"""User profiles: preference-aware re-ranking (Section-7 future work).

"Subjective digital assistants should be able to take into account user
profiles and adjust their search and interaction behavior accordingly."

A :class:`UserProfile` keeps an exponentially-smoothed weight per subjective
dimension, learned from interactions: every query mention bumps the queried
dimensions, and every *choice* the user makes bumps the dimensions the
chosen entity is strong in.  At ranking time the profile turns the uniform
mean of Algorithm 1 into a weighted mean, so a user who consistently cares
about ambiance sees ambiance-strong entities first when their query is
ambiguous about priorities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.tags import SubjectiveTag

__all__ = ["UserProfile", "personalized_rank"]


@dataclass
class UserProfile:
    """Per-user preference weights over subjective dimensions."""

    user_id: str
    #: dimension name -> weight; missing dimensions default to 1.0.
    weights: Dict[str, float] = field(default_factory=dict)
    #: smoothing factor for updates (higher = adapts faster).
    learning_rate: float = 0.3
    #: weights are clipped to this range to keep ranking stable.
    min_weight: float = 0.25
    max_weight: float = 4.0

    def weight_of(self, dimension: str) -> float:
        """Current weight for a dimension (1.0 if never observed)."""
        return self.weights.get(dimension, 1.0)

    def _bump(self, dimension: str, factor: float) -> None:
        current = self.weight_of(dimension)
        updated = (1 - self.learning_rate) * current + self.learning_rate * current * factor
        self.weights[dimension] = float(np.clip(updated, self.min_weight, self.max_weight))

    # -------------------------------------------------------------- learning

    def record_query(self, tags: Sequence[SubjectiveTag], dimension_of) -> None:
        """A query mention is weak evidence the user cares about a dimension.

        ``dimension_of`` maps a tag to its dimension name (or ``None``);
        typically ``lambda tag: resolve_dimension(tag, similarity)``.
        """
        for tag in tags:
            dimension = dimension_of(tag)
            if dimension is not None:
                self._bump(dimension, 1.25)

    def record_choice(
        self,
        chosen_entity_quality: Mapping[str, float],
        shown_mean_quality: Mapping[str, float],
    ) -> None:
        """The user picked an entity: reinforce the dimensions it stands out in.

        ``shown_mean_quality`` is the per-dimension mean over the result list
        the user saw; dimensions where the chosen entity beats the list mean
        are treated as revealed preferences.
        """
        for dimension, quality in chosen_entity_quality.items():
            baseline = shown_mean_quality.get(dimension, 0.5)
            edge = quality - baseline
            if edge > 0.05:
                self._bump(dimension, 1.0 + min(edge, 0.5))
            elif edge < -0.05:
                self._bump(dimension, 1.0 / (1.0 + min(-edge, 0.5)))

    # --------------------------------------------------------------- serving

    def normalized_weights(self, dimensions: Sequence[str]) -> Dict[str, float]:
        """Weights over ``dimensions`` rescaled to mean 1 (ranking-safe)."""
        raw = np.array([self.weight_of(d) for d in dimensions], dtype=float)
        if raw.sum() == 0:
            return {d: 1.0 for d in dimensions}
        raw *= len(raw) / raw.sum()
        return dict(zip(dimensions, raw))


def personalized_rank(
    tag_sets: Sequence[Mapping[str, float]],
    tag_dimensions: Sequence[Optional[str]],
    profile: UserProfile,
    api_entity_ids: Sequence[str],
    top_k: Optional[int] = 10,
) -> List[Tuple[str, float]]:
    """Weighted-mean variant of Algorithm 1's ranking.

    ``tag_sets[i]`` is the entity→degree mapping for the i-th query tag and
    ``tag_dimensions[i]`` its resolved dimension (``None`` → weight 1).
    """
    if len(tag_sets) != len(tag_dimensions):
        raise ValueError("tag_sets and tag_dimensions must align")
    if not tag_sets:
        return [(entity_id, 0.0) for entity_id in (api_entity_ids[:top_k] if top_k else api_entity_ids)]
    weights = np.array(
        [profile.weight_of(d) if d is not None else 1.0 for d in tag_dimensions], dtype=float
    )
    weights /= weights.sum()
    scored: List[Tuple[str, float]] = []
    for entity_id in api_entity_ids:
        scores = np.array([tag_set.get(entity_id, 0.0) for tag_set in tag_sets])
        if not np.any(scores > 0):
            continue
        scored.append((entity_id, float(np.dot(weights, scores))))
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    if not scored:
        scored = [(entity_id, 0.0) for entity_id in api_entity_ids]
    return scored[:top_k] if top_k else scored
