"""The pairing module (Section 5): heuristics → data programming → classifier.

Pipeline (Figure 6):

1. Seven labeling functions (two parse-tree, five attention-head) vote on
   whether a candidate (aspect, opinion) pair is a correct extraction.
2. A label model (majority vote, or the probabilistic generative model)
   aggregates the votes into training labels — no ground truth needed.
3. A discriminative classifier (two-layer network with sigmoid over BERT
   features) trains on those labels and generalises beyond the heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bert.encoder import BertWordEncoder
from repro.core.heuristics import AttentionPairingHeuristic, PairingHeuristic, TreePairingHeuristic
from repro.data.pairing import PairingExample
from repro.data.schema import Span
from repro.nn import Adam, Linear, Module, Tensor
from repro.nn import functional as F
from repro.nn.tensor import no_grad
from repro.text.parser import ChunkParser
from repro.weak import GenerativeLabelModel, LabelingFunction, MajorityVoteModel, apply_labeling_functions

__all__ = [
    "PairingInstance",
    "instances_from_examples",
    "heuristic_labeling_function",
    "default_labeling_functions",
    "select_attention_heads",
    "PairingClassifier",
    "PairingPipeline",
]

Pair = Tuple[Span, Span]


@dataclass(frozen=True)
class PairingInstance:
    """One candidate pair in the context of its sentence's full span sets."""

    tokens: Tuple[str, ...]
    aspect_spans: Tuple[Span, ...]
    opinion_spans: Tuple[Span, ...]
    candidate: Pair


def instances_from_examples(examples: Sequence[PairingExample]) -> List[PairingInstance]:
    """Lift flat examples into instances carrying their sentence's span sets.

    The span sets are the union of candidate spans over all examples sharing
    the sentence (the benchmark enumerates the full cross product, so this
    recovers exactly the tagger-extracted sets).
    """
    by_sentence: Dict[Tuple[str, ...], Tuple[set, set]] = {}
    for example in examples:
        aspects, opinions = by_sentence.setdefault(example.tokens, (set(), set()))
        aspects.add(example.aspect_span)
        opinions.add(example.opinion_span)
    return [
        PairingInstance(
            tokens=example.tokens,
            aspect_spans=tuple(sorted(by_sentence[example.tokens][0])),
            opinion_spans=tuple(sorted(by_sentence[example.tokens][1])),
            candidate=(example.aspect_span, example.opinion_span),
        )
        for example in examples
    ]


# ---------------------------------------------------------------------------
# Labeling functions
# ---------------------------------------------------------------------------


def heuristic_labeling_function(heuristic: PairingHeuristic) -> LabelingFunction:
    """Wrap a pairing heuristic as a binary labeling function (Section 5.2).

    Votes 1 if the candidate belongs to the heuristic's proposed pair set,
    0 otherwise (the procedure the paper describes — no abstention).
    """

    def vote(instance: PairingInstance) -> int:
        proposed = heuristic.pairs(instance.tokens, instance.aspect_spans, instance.opinion_spans)
        return 1 if instance.candidate in proposed else 0

    return LabelingFunction(heuristic.name, vote)


def select_attention_heads(
    encoder: BertWordEncoder,
    instances: Sequence[PairingInstance],
    labels: Sequence[int],
    top_k: int = 5,
) -> List[Tuple[int, int, float]]:
    """Rank all (layer, head) coordinates by pairing accuracy on a dev set.

    This automates the paper's "qualitative analysis" used to choose the
    five attention labeling functions.  Returns ``(layer, head, accuracy)``
    triples, best first.
    """
    config = encoder.config
    results: List[Tuple[int, int, float]] = []
    for layer in range(config.num_layers):
        for head in range(config.num_heads):
            heuristic = AttentionPairingHeuristic(encoder, layer, head)
            lf = heuristic_labeling_function(heuristic)
            votes = [lf(inst) for inst in instances]
            accuracy = float(np.mean([v == g for v, g in zip(votes, labels)]))
            results.append((layer, head, accuracy))
    results.sort(key=lambda t: -t[2])
    return results[:top_k]


def default_labeling_functions(
    encoder: BertWordEncoder,
    parser: ChunkParser,
    attention_heads: Sequence[Tuple[int, int]],
    attention_margin: float = 1.2,
) -> List[LabelingFunction]:
    """The paper's seven LFs: two tree-based plus five attention heads.

    Attention LFs use a confidence margin so they only assert pairs the
    head is sure about — reproducing the high-precision / low-recall LF
    profile of Table 5.
    """
    lfs = [
        heuristic_labeling_function(TreePairingHeuristic(parser, direction="opinions")),
        heuristic_labeling_function(TreePairingHeuristic(parser, direction="aspects")),
    ]
    for layer, head in attention_heads:
        lfs.append(
            heuristic_labeling_function(
                AttentionPairingHeuristic(encoder, layer, head, margin=attention_margin)
            )
        )
    return lfs


# ---------------------------------------------------------------------------
# Discriminative classifier
# ---------------------------------------------------------------------------


class PairingClassifier(Module):
    """Two-layer sigmoid classifier over BERT features (Section 5.2).

    Features per instance: contextual mean vectors of the aspect span, the
    opinion span and the whole sentence, their element-wise interaction,
    plus two surface scalars (normalised token distance and a
    clause-boundary indicator) that stand in for positional encodings.
    """

    _BOUNDARIES = {".", "!", "?", ";", "but", "while", "though"}

    def __init__(self, encoder: BertWordEncoder, hidden: int = 32, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.encoder = encoder
        dim = encoder.dim
        self.feature_dim = 4 * dim + 2
        self.hidden_layer = Linear(self.feature_dim, hidden, rng)
        self.output_layer = Linear(hidden, 1, rng)

    # ---------------------------------------------------------------- features

    def featurize(self, instances: Sequence[PairingInstance]) -> np.ndarray:
        """Dense feature matrix ``(N, feature_dim)``; BERT runs batched."""
        features = np.zeros((len(instances), self.feature_dim))
        batch_size = 64
        with no_grad():
            for start in range(0, len(instances), batch_size):
                chunk = instances[start : start + batch_size]
                hidden, mask, _ = self.encoder.encode([list(i.tokens) for i in chunk])
                vectors = hidden.data
                for row, instance in enumerate(chunk):
                    features[start + row] = self._instance_features(instance, vectors[row], mask[row])
        return features

    def _instance_features(self, instance: PairingInstance, vectors: np.ndarray, mask: np.ndarray) -> np.ndarray:
        steps = int(mask.sum())
        (a_start, a_end), (o_start, o_end) = instance.candidate
        a_end = min(a_end, steps) or 1
        o_end = min(o_end, steps) or 1
        aspect_vec = vectors[min(a_start, steps - 1) : a_end].mean(axis=0)
        opinion_vec = vectors[min(o_start, steps - 1) : o_end].mean(axis=0)
        sentence_vec = vectors[:steps].mean(axis=0)
        interaction = aspect_vec * opinion_vec
        distance = abs(((a_start + a_end) / 2) - ((o_start + o_end) / 2)) / max(steps, 1)
        lo, hi = sorted((min(a_start, steps - 1), min(o_start, steps - 1)))
        between = instance.tokens[lo:hi]
        boundary = 1.0 if any(t in self._BOUNDARIES for t in between) else 0.0
        return np.concatenate(
            [aspect_vec, opinion_vec, sentence_vec, interaction, [distance, boundary]]
        )

    # ------------------------------------------------------------------ model

    def logits(self, features: np.ndarray) -> Tensor:
        hidden = self.hidden_layer(Tensor(features)).tanh()
        return self.output_layer(hidden).reshape(len(features))

    def fit(
        self,
        instances: Sequence[PairingInstance],
        labels: Sequence[int],
        epochs: int = 30,
        batch_size: int = 32,
        learning_rate: float = 5e-3,
        seed: int = 0,
        balance: bool = True,
    ) -> List[float]:
        """Train on (instances, labels); returns per-epoch mean losses.

        ``balance`` reweights the positive class by the label imbalance —
        weak labels from high-precision/low-recall labeling functions
        under-report positives, and without the correction the classifier
        inherits their recall ceiling.
        """
        features = self.featurize(instances)
        targets = np.asarray(labels, dtype=np.float64)
        pos_weight = 1.0
        if balance and targets.sum() > 0:
            pos_weight = float((len(targets) - targets.sum()) / targets.sum())
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), lr=learning_rate)
        history: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(len(features))
            losses = []
            for start in range(0, len(order), batch_size):
                idx = order[start : start + batch_size]
                loss = F.binary_cross_entropy_with_logits(
                    self.logits(features[idx]), targets[idx], pos_weight=pos_weight
                )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            history.append(float(np.mean(losses)))
        return history

    def predict_proba(self, instances: Sequence[PairingInstance]) -> np.ndarray:
        """P(correct extraction) per instance."""
        features = self.featurize(instances)
        with no_grad():
            logits = self.logits(features).data
        return 1.0 / (1.0 + np.exp(-logits))

    def predict(self, instances: Sequence[PairingInstance]) -> np.ndarray:
        """Hard 0/1 labels."""
        return (self.predict_proba(instances) >= 0.5).astype(np.int64)


# ---------------------------------------------------------------------------
# Full pipeline
# ---------------------------------------------------------------------------


@dataclass
class PairingPipeline:
    """Figure 6 end-to-end: LFs → label model → discriminative classifier."""

    labeling_functions: List[LabelingFunction]
    label_model: str = "majority"  # or "probabilistic"
    classifier: Optional[PairingClassifier] = None
    votes_: Optional[np.ndarray] = None
    weak_labels_: Optional[np.ndarray] = None
    weak_probs_: Optional[np.ndarray] = None

    def weak_label(self, instances: Sequence[PairingInstance]) -> np.ndarray:
        """Aggregate LF votes into probabilistic labels (no ground truth)."""
        votes = apply_labeling_functions(self.labeling_functions, instances)
        if self.label_model == "majority":
            probs = MajorityVoteModel().predict_proba(votes)
        elif self.label_model == "probabilistic":
            probs = GenerativeLabelModel().fit(votes).predict_proba(votes)
        else:
            raise ValueError(f"unknown label model {self.label_model!r}")
        self.votes_ = votes
        self.weak_probs_ = probs
        self.weak_labels_ = (probs >= 0.5).astype(np.int64)
        return self.weak_labels_

    def fit(
        self,
        instances: Sequence[PairingInstance],
        confidence_threshold: float = 0.8,
        **fit_kwargs,
    ) -> "PairingPipeline":
        """Create weak labels and train the discriminative classifier.

        Following Snorkel practice, the classifier trains only on the
        examples the label model is confident about (posterior ≥ threshold
        either way); it then generalises to the ambiguous rest through its
        features — which is how the discriminative model ends up *better*
        than the label model that taught it.
        """
        if self.classifier is None:
            raise ValueError("pipeline needs a classifier to fit")
        self.weak_label(instances)
        probs = self.weak_probs_
        confident = (probs >= confidence_threshold) | (probs <= 1.0 - confidence_threshold)
        if confident.sum() < 10:  # degenerate LF set: fall back to everything
            confident = np.ones(len(instances), dtype=bool)
        train_instances = [inst for inst, keep in zip(instances, confident) if keep]
        train_labels = self.weak_labels_[confident]
        self.classifier.fit(train_instances, train_labels, **fit_kwargs)
        return self

    def predict(self, instances: Sequence[PairingInstance]) -> np.ndarray:
        """Classifier predictions (requires :meth:`fit`)."""
        if self.classifier is None:
            raise ValueError("pipeline has no trained classifier")
        return self.classifier.predict(instances)
