"""Synonym / related-term query expansion for the IR baseline.

The paper strengthens its IR baseline "following the work of [Ganesan &
Zhai]" with the capability to expand query terms into synonymous and related
terms.  Expansion here is lexicon-driven:

* an aspect word expands to the other surface forms of its concept and to
  surfaces of taxonomy neighbours (parent/children), weighted by Wu–Palmer
  similarity;
* an opinion word expands to other opinion words with high semantic-vector
  cosine (same topics, same polarity direction).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.text.lexicon import DomainLexicon
from repro.text.similarity import ConceptualSimilarity

__all__ = ["QueryExpander"]


class QueryExpander:
    """Expands query tokens into weighted term dictionaries."""

    def __init__(
        self,
        lexicon: DomainLexicon,
        similarity: Optional[ConceptualSimilarity] = None,
        max_expansions_per_term: int = 4,
        min_weight: float = 0.55,
    ):
        self.lexicon = lexicon
        self.similarity = similarity or ConceptualSimilarity(lexicon)
        self.max_expansions = max_expansions_per_term
        self.min_weight = min_weight
        self._surface_index = lexicon.aspect_surface_index()
        self._opinion_index = lexicon.opinion_index()

    # ------------------------------------------------------------ expansion

    def expand_term(self, term: str) -> Dict[str, float]:
        """Weighted expansion of one query term (original term has weight 1)."""
        term = term.lower()
        expansion: Dict[str, float] = {term: 1.0}
        if term in self._surface_index:
            self._expand_aspect(term, expansion)
        if term in self._opinion_index:
            self._expand_opinion(term, expansion)
        return expansion

    def _expand_aspect(self, term: str, expansion: Dict[str, float]) -> None:
        candidates: List[tuple] = []
        for surface in self._surface_index:
            if surface == term or " " in surface:
                continue
            weight = self.similarity.aspect_similarity(term, surface)
            if weight >= self.min_weight:
                candidates.append((weight, surface))
        for weight, surface in sorted(candidates, reverse=True)[: self.max_expansions]:
            expansion[surface] = max(expansion.get(surface, 0.0), weight)

    def _expand_opinion(self, term: str, expansion: Dict[str, float]) -> None:
        candidates: List[tuple] = []
        for other in self._opinion_index:
            if other == term or " " in other:
                continue
            weight = self.similarity.opinion_similarity(term, other)
            if weight >= self.min_weight:
                candidates.append((weight, other))
        for weight, other in sorted(candidates, reverse=True)[: self.max_expansions]:
            expansion[other] = max(expansion.get(other, 0.0), weight)

    def expand_query(self, tokens: List[str]) -> Dict[str, float]:
        """Expansion of a full query; overlapping expansions keep max weight."""
        merged: Dict[str, float] = {}
        for token in tokens:
            for term, weight in self.expand_term(token).items():
                merged[term] = max(merged.get(term, 0.0), weight)
        return merged
