"""Ranking-quality metrics: the paper's DCG / NDCG (Eqs. 10–11).

The gain of an entity at rank ``j`` for query ``Q = {q_1..q_m}`` is
``2^{(1/m) * sum_i sat(q_i, e_j)} - 1`` discounted by ``log2(j + 1)``;
NDCG divides by the ideal-ordering DCG.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

__all__ = ["dcg", "ndcg", "mean_ndcg"]

SatFn = Callable[[str, str], float]  # (tag/dimension, entity_id) -> [0, 1]


def _gain(query: Sequence[str], entity_id: str, sat: SatFn) -> float:
    mean_sat = sum(sat(q, entity_id) for q in query) / len(query)
    return 2.0**mean_sat - 1.0


def dcg(query: Sequence[str], ranking: Sequence[str], sat: SatFn) -> float:
    """Discounted cumulative gain of ``ranking`` for ``query`` (Eq. 10)."""
    if not query:
        raise ValueError("query must contain at least one tag")
    total = 0.0
    for j, entity_id in enumerate(ranking, start=1):
        total += _gain(query, entity_id, sat) / math.log2(j + 1)
    return total


def ndcg(
    query: Sequence[str],
    ranking: Sequence[str],
    sat: SatFn,
    all_entities: Sequence[str],
    top_k: int = 10,
) -> float:
    """Normalised DCG at ``top_k`` (Eq. 11).

    The ideal ordering sorts *all* entities by mean satisfaction; NDCG is the
    ranking's DCG over its top-k divided by the ideal top-k DCG.
    """
    ranking = list(ranking)[:top_k]
    ideal = sorted(
        all_entities,
        key=lambda e: (-sum(sat(q, e) for q in query), e),
    )[:top_k]
    ideal_score = dcg(query, ideal, sat)
    if ideal_score == 0.0:
        return 0.0
    return dcg(query, ranking, sat) / ideal_score


def mean_ndcg(
    queries: Sequence[Sequence[str]],
    rankings: Sequence[Sequence[str]],
    sat: SatFn,
    all_entities: Sequence[str],
    top_k: int = 10,
) -> float:
    """Arithmetic mean NDCG over a query set (the paper's table entries)."""
    if len(queries) != len(rankings):
        raise ValueError("queries and rankings must align")
    scores = [
        ndcg(query, ranking, sat, all_entities, top_k=top_k)
        for query, ranking in zip(queries, rankings)
    ]
    return sum(scores) / len(scores)
