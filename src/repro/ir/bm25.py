"""Okapi BM25 inverted index (the IR baseline's retrieval model, Section 6.2).

Documents are token lists; queries may carry per-term weights so that the
synonym-expansion layer (``repro.ir.expansion``) can down-weight expanded
terms relative to the original query words.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Bm25Index"]


class Bm25Index:
    """An in-memory BM25 index.

    Standard Okapi scoring with parameters ``k1`` and ``b``; IDF uses the
    non-negative variant ``log(1 + (N - df + 0.5) / (df + 0.5))``.
    """

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        self.k1 = k1
        self.b = b
        self._postings: Dict[str, Dict[str, int]] = defaultdict(dict)
        self._doc_lengths: Dict[str, int] = {}
        self._finalized = False
        self._avg_length = 0.0

    # --------------------------------------------------------------- building

    def add_document(self, doc_id: str, tokens: Sequence[str]) -> None:
        """Add (or replace) a document."""
        if self._finalized:
            raise RuntimeError("index already finalized")
        if doc_id in self._doc_lengths:
            raise KeyError(f"duplicate document id {doc_id!r}")
        counts = Counter(token.lower() for token in tokens)
        for term, count in counts.items():
            self._postings[term][doc_id] = count
        self._doc_lengths[doc_id] = sum(counts.values())

    def finalize(self) -> "Bm25Index":
        """Freeze the index and precompute statistics."""
        if not self._doc_lengths:
            raise RuntimeError("cannot finalize an empty index")
        self._avg_length = sum(self._doc_lengths.values()) / len(self._doc_lengths)
        self._finalized = True
        return self

    # ---------------------------------------------------------------- queries

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term.lower(), {}))

    def idf(self, term: str) -> float:
        """Non-negative BM25 inverse document frequency."""
        df = self.document_frequency(term)
        return math.log(1.0 + (self.num_documents - df + 0.5) / (df + 0.5))

    def score(self, query: Mapping[str, float] | Sequence[str]) -> Dict[str, float]:
        """BM25 scores for all matching documents.

        ``query`` is either a token list (weights 1.0) or a mapping
        ``term -> weight``.
        """
        if not self._finalized:
            raise RuntimeError("finalize() the index before querying")
        if not isinstance(query, Mapping):
            weights = Counter(t.lower() for t in query)
        else:
            weights = {t.lower(): w for t, w in query.items()}
        scores: Dict[str, float] = defaultdict(float)
        for term, weight in weights.items():
            postings = self._postings.get(term)
            if not postings:
                continue
            idf = self.idf(term)
            for doc_id, tf in postings.items():
                length_norm = 1.0 - self.b + self.b * self._doc_lengths[doc_id] / self._avg_length
                scores[doc_id] += weight * idf * tf * (self.k1 + 1) / (tf + self.k1 * length_norm)
        return dict(scores)

    def rank(self, query: Mapping[str, float] | Sequence[str], top_k: Optional[int] = None) -> List[Tuple[str, float]]:
        """Documents sorted by descending score (ties broken by id)."""
        scores = self.score(query)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top_k] if top_k else ranked
