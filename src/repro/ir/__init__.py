"""``repro.ir`` — information-retrieval substrate.

Okapi BM25 retrieval, lexicon-driven synonym query expansion (for the paper's
strengthened IR baseline) and the DCG/NDCG ranking metrics of Eqs. 10–11.
"""

from repro.ir.bm25 import Bm25Index
from repro.ir.expansion import QueryExpander
from repro.ir.metrics import dcg, mean_ndcg, ndcg

__all__ = ["Bm25Index", "QueryExpander", "dcg", "mean_ndcg", "ndcg"]
