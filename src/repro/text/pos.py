"""A lexicon-driven part-of-speech tagger for the synthetic language.

The chunking parser (``repro.text.parser``) needs coarse POS tags.  Since
review sentences are generated from known lexicons, a closed-class word list
plus the domain lexicon covers the vocabulary; unknown words default to NOUN
(the standard open-class fallback), which also gives sensible behaviour on
typo-corrupted tokens.
"""

from __future__ import annotations

from typing import Dict, List

from repro.text.lexicon import DomainLexicon

__all__ = ["PosLexicon", "DET", "NOUN", "ADJ", "VERB", "ADV", "CONJ", "PREP", "PRON", "NEG", "PUNCT"]

DET = "DET"
NOUN = "NOUN"
ADJ = "ADJ"
VERB = "VERB"
ADV = "ADV"
CONJ = "CONJ"
PREP = "PREP"
PRON = "PRON"
NEG = "NEG"
PUNCT = "PUNCT"

_CLOSED_CLASS: Dict[str, str] = {}
for word in ("the", "a", "an", "this", "that", "these", "those", "its", "their", "our", "my", "her", "his"):
    _CLOSED_CLASS[word] = DET
for word in ("i", "we", "it", "they", "you", "she", "he", "everything", "nothing"):
    _CLOSED_CLASS[word] = PRON
for word in (
    "is", "are", "was", "were", "be", "been", "seemed", "seems", "felt", "feels",
    "looked", "looks", "tasted", "tastes", "serves", "served", "serve", "have",
    "has", "had", "love", "loved", "like", "liked", "enjoy", "enjoyed", "found",
    "came", "come", "went", "offers", "offered", "employs", "recommend",
    "recommended", "tried", "ordered", "arrived", "stayed", "visited", "got",
    "makes", "made", "runs", "ran", "works", "worked", "charges", "delivers",
    "delivered", "returned", "expected", "kept", "turned",
):
    _CLOSED_CLASS[word] = VERB
for word in (
    "really", "very", "super", "quite", "extremely", "pretty", "so", "too",
    "somewhat", "incredibly", "honestly", "truly", "absolutely", "surprisingly",
    "simply", "just", "rather", "totally", "again", "always", "here", "there",
    "overall", "definitely",
):
    _CLOSED_CLASS[word] = ADV
for word in ("and", "but", "or", "while", "though", "although", "yet"):
    _CLOSED_CLASS[word] = CONJ
for word in ("of", "in", "at", "with", "on", "for", "to", "from", "by", "near", "about", "around"):
    _CLOSED_CLASS[word] = PREP
for word in ("not", "never", "no"):
    _CLOSED_CLASS[word] = NEG
for word in (".", ",", "!", "?", ";", ":"):
    _CLOSED_CLASS[word] = PUNCT


class PosLexicon:
    """Maps tokens to coarse POS tags using closed classes + a domain lexicon."""

    def __init__(self, lexicon: DomainLexicon):
        self._table: Dict[str, str] = dict(_CLOSED_CLASS)
        # Aspect surface words are nouns.
        for concept in lexicon.aspects.values():
            for surface in concept.surfaces:
                for word in surface.lower().split():
                    self._table.setdefault(word, NOUN)
        # Opinion words are adjectives; for multi-word opinions, non-closed-class
        # member words are adjectives too ("watered down", "long lasting").
        for opinion in lexicon.opinions:
            for word in opinion.text.lower().split():
                if word not in _CLOSED_CLASS:
                    self._table[word] = ADJ

    def tag(self, token: str) -> str:
        """POS tag for one token (NOUN fallback for unknown words)."""
        return self._table.get(token.lower(), NOUN)

    def tag_sequence(self, tokens: List[str]) -> List[str]:
        """POS tags for a token sequence."""
        return [self.tag(t) for t in tokens]
