"""Conceptual similarity between subjective tags (Section 3.1).

A subjective tag is an (aspect phrase, opinion phrase) pair.  Tag similarity
combines:

* **aspect similarity** — Wu–Palmer over the concept taxonomy, so *pizza*
  matches *food* strongly;
* **opinion similarity** — cosine between semantic feature vectors built from
  the lexicon: each opinion word is embedded by its polarity and its topic
  distribution, so *delicious* and *tasty* land close, while *delicious* and
  *friendly* diverge through their disjoint topics.

The paper states conceptual similarity "works better on short phrases such as
subjective tags than cosine similarity [over raw text]", which is exactly the
behaviour this construction yields.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.text.concepts import ConceptTaxonomy
from repro.text.lexicon import DomainLexicon, OpinionWord

__all__ = ["ConceptualSimilarity"]

_MODIFIERS = {"really", "very", "super", "quite", "extremely", "pretty", "so", "a", "bit"}


_POLARITY_SCALE = 1.5
_IDENTITY_DIM = 8
_IDENTITY_SCALE = 0.5


def _identity_vector(word: str) -> np.ndarray:
    """A stable pseudo-random unit vector unique-ish to each word.

    Keeps distinct-but-related opinion words ("romantic" vs "quiet") from
    collapsing onto each other when their topic sets overlap.
    """
    import hashlib

    seed = int.from_bytes(hashlib.sha256(word.encode("utf-8")).digest()[:8], "little")
    vec = np.random.default_rng(seed).normal(size=_IDENTITY_DIM)
    return vec / np.linalg.norm(vec)


class ConceptualSimilarity:
    """Similarity oracle over subjective tags for one domain.

    Opinion words are embedded from lexicon semantics: a topic-distribution
    block, a *signed* polarity channel (scaled so that opposite-polarity
    words repel) and a small per-word identity block.  The overall tag
    similarity gates the opinion cosine by the (softened) taxonomy
    similarity of the aspects, so tags about unrelated aspects score ~0 no
    matter the opinions, and same-aspect opposite-polarity tags stay well
    below any sensible indexing threshold.
    """

    def __init__(
        self,
        lexicon: DomainLexicon,
        opinion_floor: float = 0.35,
    ):
        if not 0.0 <= opinion_floor < 1.0:
            raise ValueError("opinion_floor must lie in [0, 1)")
        self.lexicon = lexicon
        self.taxonomy = ConceptTaxonomy(lexicon)
        #: similarity granted to a perfect aspect match with unknown/zero
        #: opinion affinity (same aspect is weak evidence by itself).
        self.opinion_floor = opinion_floor
        self._topics = sorted({t for op in lexicon.opinions for t in op.topics})
        self._topic_index = {t: i for i, t in enumerate(self._topics)}
        self._opinion_vectors: Dict[str, np.ndarray] = {
            op.text.lower(): self._vectorise(op) for op in lexicon.opinions
        }

    # ----------------------------------------------------------- embeddings

    def _vectorise(self, opinion: OpinionWord) -> np.ndarray:
        """Topic block + signed polarity channel + identity block."""
        vec = np.zeros(len(self._topics) + 1 + _IDENTITY_DIM)
        for topic in opinion.topics:
            vec[self._topic_index[topic]] = 1.0 / np.sqrt(len(opinion.topics))
        vec[len(self._topics)] = _POLARITY_SCALE * opinion.polarity
        vec[len(self._topics) + 1 :] = _IDENTITY_SCALE * _identity_vector(opinion.text.lower())
        return vec

    def _normalise_opinion(self, phrase: str) -> str:
        """Strip intensity modifiers: 'really good' → 'good'."""
        phrase = phrase.lower().strip()
        if phrase in self._opinion_vectors:
            return phrase
        words = [w for w in phrase.split() if w not in _MODIFIERS]
        candidate = " ".join(words)
        if candidate in self._opinion_vectors:
            return candidate
        # Multi-word idioms may include modifier-looking words; retry raw tail.
        for n in range(len(words)):
            tail = " ".join(words[n:])
            if tail in self._opinion_vectors:
                return tail
        return phrase

    def opinion_vector(self, phrase: str) -> Optional[np.ndarray]:
        """Embedding of an opinion phrase, or ``None`` if out of vocabulary."""
        return self._opinion_vectors.get(self._normalise_opinion(phrase))

    # ----------------------------------------------------------- similarity

    def opinion_similarity(self, phrase_a: str, phrase_b: str) -> float:
        """Cosine similarity between opinion phrases (0 when unknown)."""
        norm_a = self._normalise_opinion(phrase_a)
        norm_b = self._normalise_opinion(phrase_b)
        if norm_a == norm_b:
            return 1.0
        vec_a = self._opinion_vectors.get(norm_a)
        vec_b = self._opinion_vectors.get(norm_b)
        if vec_a is None or vec_b is None:
            return 0.0
        denom = np.linalg.norm(vec_a) * np.linalg.norm(vec_b)
        if denom == 0:
            return 0.0
        # Opposite-polarity pairs drive the cosine negative; clamp to 0.
        return float(np.clip(np.dot(vec_a, vec_b) / denom, 0.0, 1.0))

    def aspect_similarity(self, surface_a: str, surface_b: str) -> float:
        """Taxonomy similarity between aspect surface forms."""
        return self.taxonomy.surface_similarity(surface_a, surface_b)

    def tag_similarity(self, tag_a: Tuple[str, str], tag_b: Tuple[str, str]) -> float:
        """Similarity between two (aspect, opinion) tags, in [0, 1].

        ``sqrt(aspect_sim) * (floor + (1 - floor) * opinion_sim)``: the
        aspect channel multiplicatively gates the score (unrelated aspects →
        ~0 regardless of opinions), softened by a square root so taxonomy
        children ("pizza" under "food") are not over-penalised.
        """
        aspect_sim = self.aspect_similarity(tag_a[0], tag_b[0])
        if aspect_sim <= 0.0:
            return 0.0
        opinion_sim = self.opinion_similarity(tag_a[1], tag_b[1])
        gate = np.sqrt(aspect_sim)
        score = gate * (self.opinion_floor + (1.0 - self.opinion_floor) * opinion_sim)
        return float(np.clip(score, 0.0, 1.0))
