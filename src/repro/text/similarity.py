"""Conceptual similarity between subjective tags (Section 3.1).

A subjective tag is an (aspect phrase, opinion phrase) pair.  Tag similarity
combines:

* **aspect similarity** — Wu–Palmer over the concept taxonomy, so *pizza*
  matches *food* strongly;
* **opinion similarity** — cosine between semantic feature vectors built from
  the lexicon: each opinion word is embedded by its polarity and its topic
  distribution, so *delicious* and *tasty* land close, while *delicious* and
  *friendly* diverge through their disjoint topics.

The paper states conceptual similarity "works better on short phrases such as
subjective tags than cosine similarity [over raw text]", which is exactly the
behaviour this construction yields.

Two evaluation paths are provided:

* :meth:`ConceptualSimilarity.tag_similarity` — the scalar reference oracle,
  one pair at a time;
* :meth:`ConceptualSimilarity.tag_similarity_matrix` — the vectorized kernel:
  the full pairwise score block via one stacked opinion-embedding matmul plus
  the taxonomy's precomputed concept-pair Wu–Palmer table.  It reproduces the
  scalar formula ``sqrt(aspect_sim) * (floor + (1 - floor) * opinion_sim)``
  exactly (agreement ≤ 1e-9 on every entry, enforced by the property tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.text.concepts import ConceptTaxonomy
from repro.text.lexicon import DomainLexicon, OpinionWord
from repro.utils.caching import memoize

__all__ = ["ConceptualSimilarity", "TagFeatures", "tag_pair"]

_MODIFIERS = {"really", "very", "super", "quite", "extremely", "pretty", "so", "a", "bit"}


_POLARITY_SCALE = 1.5
_IDENTITY_DIM = 8
_IDENTITY_SCALE = 0.5

#: blocks up to this many query rows are evaluated one gemv per row so each
#: row's scores do not depend on the batch shape (see similarity_block).
_ROW_STATIONARY_MAX_ROWS = 64


def tag_pair(tag) -> Tuple[str, str]:
    """(aspect, opinion) for a :class:`SubjectiveTag` or a raw 2-tuple."""
    pair = getattr(tag, "pair", tag)
    return (pair[0], pair[1])


@memoize
def _identity_vector(word: str) -> np.ndarray:
    """A stable pseudo-random unit vector unique-ish to each word.

    Keeps distinct-but-related opinion words ("romantic" vs "quiet") from
    collapsing onto each other when their topic sets overlap.  Memoized: the
    hash + RNG round is pure and word-keyed, so each word pays it once per
    process instead of once per pairwise call.
    """
    import hashlib

    seed = int.from_bytes(hashlib.sha256(word.encode("utf-8")).digest()[:8], "little")
    vec = np.random.default_rng(seed).normal(size=_IDENTITY_DIM)
    return vec / np.linalg.norm(vec)


@dataclass(frozen=True)
class _TagProfile:
    """Per-tag facts the kernel needs, resolved once and cached.

    ``concept_gid`` indexes the taxonomy pair table (-1 when the aspect is
    out of taxonomy); ``surface_gid``/``opinion_gid`` intern the lower-cased
    aspect surface and the *normalised* opinion form, so equality checks are
    integer comparisons; ``unit`` is the unit-norm opinion embedding (``None``
    when out of vocabulary).
    """

    concept_gid: int
    surface_gid: int
    opinion_gid: int
    unit: Optional[np.ndarray]


@dataclass(frozen=True)
class TagFeatures:
    """Columnar features for a batch of tags — the kernel's input shape."""

    concepts: np.ndarray  #: (n,) concept gids, -1 for unknown aspects
    surfaces: np.ndarray  #: (n,) interned aspect surface forms
    opinions: np.ndarray  #: (n,) interned normalised opinion forms
    units: np.ndarray     #: (n, dim) unit opinion embeddings, zero rows when OOV

    def __len__(self) -> int:
        return len(self.concepts)


class ConceptualSimilarity:
    """Similarity oracle over subjective tags for one domain.

    Opinion words are embedded from lexicon semantics: a topic-distribution
    block, a *signed* polarity channel (scaled so that opposite-polarity
    words repel) and a small per-word identity block.  The overall tag
    similarity gates the opinion cosine by the (softened) taxonomy
    similarity of the aspects, so tags about unrelated aspects score ~0 no
    matter the opinions, and same-aspect opposite-polarity tags stay well
    below any sensible indexing threshold.
    """

    def __init__(
        self,
        lexicon: DomainLexicon,
        opinion_floor: float = 0.35,
    ):
        if not 0.0 <= opinion_floor < 1.0:
            raise ValueError("opinion_floor must lie in [0, 1)")
        self.lexicon = lexicon
        self.taxonomy = ConceptTaxonomy(lexicon)
        #: similarity granted to a perfect aspect match with unknown/zero
        #: opinion affinity (same aspect is weak evidence by itself).
        self.opinion_floor = opinion_floor
        self._topics = sorted({t for op in lexicon.opinions for t in op.topics})
        self._topic_index = {t: i for i, t in enumerate(self._topics)}
        self._opinion_vectors: Dict[str, np.ndarray] = {
            op.text.lower(): self._vectorise(op) for op in lexicon.opinions
        }
        self._dim = len(self._topics) + 1 + _IDENTITY_DIM
        #: unit-norm copies for the matmul kernel (cosine = dot of units).
        self._opinion_units: Dict[str, np.ndarray] = {
            word: vec / np.linalg.norm(vec) for word, vec in self._opinion_vectors.items()
        }
        self._norm_cache: Dict[str, str] = {}
        self._profile_cache: Dict[Tuple[str, str], _TagProfile] = {}
        self._surface_gids: Dict[str, int] = {}
        self._opinion_gids: Dict[str, int] = {}

    # ----------------------------------------------------------- embeddings

    def _vectorise(self, opinion: OpinionWord) -> np.ndarray:
        """Topic block + signed polarity channel + identity block."""
        vec = np.zeros(len(self._topics) + 1 + _IDENTITY_DIM)
        for topic in opinion.topics:
            vec[self._topic_index[topic]] = 1.0 / np.sqrt(len(opinion.topics))
        vec[len(self._topics)] = _POLARITY_SCALE * opinion.polarity
        vec[len(self._topics) + 1 :] = _IDENTITY_SCALE * _identity_vector(opinion.text.lower())
        return vec

    def _normalise_opinion(self, phrase: str) -> str:
        """Strip intensity modifiers: 'really good' → 'good'.  Memoized."""
        cached = self._norm_cache.get(phrase)
        if cached is not None:
            return cached
        norm = self._normalise_opinion_uncached(phrase)
        self._norm_cache[phrase] = norm
        return norm

    def _normalise_opinion_uncached(self, phrase: str) -> str:
        phrase = phrase.lower().strip()
        if phrase in self._opinion_vectors:
            return phrase
        words = [w for w in phrase.split() if w not in _MODIFIERS]
        candidate = " ".join(words)
        if candidate in self._opinion_vectors:
            return candidate
        # Multi-word idioms may include modifier-looking words; retry raw tail.
        for n in range(len(words)):
            tail = " ".join(words[n:])
            if tail in self._opinion_vectors:
                return tail
        return phrase

    def opinion_vector(self, phrase: str) -> Optional[np.ndarray]:
        """Embedding of an opinion phrase, or ``None`` if out of vocabulary."""
        return self._opinion_vectors.get(self._normalise_opinion(phrase))

    # ----------------------------------------------------------- similarity

    def opinion_similarity(self, phrase_a: str, phrase_b: str) -> float:
        """Cosine similarity between opinion phrases (0 when unknown)."""
        norm_a = self._normalise_opinion(phrase_a)
        norm_b = self._normalise_opinion(phrase_b)
        if norm_a == norm_b:
            return 1.0
        vec_a = self._opinion_vectors.get(norm_a)
        vec_b = self._opinion_vectors.get(norm_b)
        if vec_a is None or vec_b is None:
            return 0.0
        denom = np.linalg.norm(vec_a) * np.linalg.norm(vec_b)
        if denom == 0:
            return 0.0
        # Opposite-polarity pairs drive the cosine negative; clamp to 0.
        return float(np.clip(np.dot(vec_a, vec_b) / denom, 0.0, 1.0))

    def aspect_similarity(self, surface_a: str, surface_b: str) -> float:
        """Taxonomy similarity between aspect surface forms."""
        return self.taxonomy.surface_similarity(surface_a, surface_b)

    def tag_similarity(self, tag_a: Tuple[str, str], tag_b: Tuple[str, str]) -> float:
        """Similarity between two (aspect, opinion) tags, in [0, 1].

        ``sqrt(aspect_sim) * (floor + (1 - floor) * opinion_sim)``: the
        aspect channel multiplicatively gates the score (unrelated aspects →
        ~0 regardless of opinions), softened by a square root so taxonomy
        children ("pizza" under "food") are not over-penalised.
        """
        aspect_sim = self.aspect_similarity(tag_a[0], tag_b[0])
        if aspect_sim <= 0.0:
            return 0.0
        opinion_sim = self.opinion_similarity(tag_a[1], tag_b[1])
        gate = np.sqrt(aspect_sim)
        score = gate * (self.opinion_floor + (1.0 - self.opinion_floor) * opinion_sim)
        return float(np.clip(score, 0.0, 1.0))

    # ----------------------------------------------------- vectorized kernel

    def tag_profile(self, tag) -> _TagProfile:
        """Resolved per-tag features, computed once per distinct surface pair."""
        aspect, opinion = tag_pair(tag)
        key = (aspect, opinion)
        profile = self._profile_cache.get(key)
        if profile is not None:
            return profile
        surface = aspect.lower()
        concept = self.taxonomy.concept_of(surface)
        concept_gid = self.taxonomy.concept_index(concept) if concept is not None else -1
        norm = self._normalise_opinion(opinion)
        profile = _TagProfile(
            concept_gid=concept_gid,
            surface_gid=self._surface_gids.setdefault(surface, len(self._surface_gids)),
            opinion_gid=self._opinion_gids.setdefault(norm, len(self._opinion_gids)),
            unit=self._opinion_units.get(norm),
        )
        self._profile_cache[key] = profile
        return profile

    def profile_features(self, profiles: Sequence[_TagProfile]) -> TagFeatures:
        """Stack per-tag profiles into the kernel's columnar arrays."""
        n = len(profiles)
        units = np.zeros((n, self._dim))
        for i, profile in enumerate(profiles):
            if profile.unit is not None:
                units[i] = profile.unit
        return TagFeatures(
            concepts=np.fromiter((p.concept_gid for p in profiles), dtype=np.intp, count=n),
            surfaces=np.fromiter((p.surface_gid for p in profiles), dtype=np.intp, count=n),
            opinions=np.fromiter((p.opinion_gid for p in profiles), dtype=np.intp, count=n),
            units=units,
        )

    def tag_features(self, tags: Sequence) -> TagFeatures:
        """Columnar features for a batch of tags (profiles are memoized)."""
        return self.profile_features([self.tag_profile(tag) for tag in tags])

    def similarity_block(self, features_a: TagFeatures, features_b: TagFeatures) -> np.ndarray:
        """The pairwise score block between two featurised tag batches.

        Bit-for-bit semantics of :meth:`tag_similarity`: exact surface or
        normalised-opinion equality short-circuits to 1.0 before any float
        arithmetic, unknown aspects/opinions contribute exactly 0.0, and the
        same gate formula is applied elementwise.
        """
        if len(features_a) == 0 or len(features_b) == 0:
            return np.zeros((len(features_a), len(features_b)))
        # Opinion channel over unit embeddings.  OOV rows are zero vectors,
        # so unknown opinions yield cosine 0 for free.  Small blocks are
        # evaluated row-stationary (one gemv per query row): BLAS gemm picks
        # shape-dependent accumulation orders, so the same query row can land
        # on different low bits depending on how many rows ride along in the
        # block.  Row-stationary evaluation makes every row's scores bitwise
        # independent of its batch — the guarantee `repro.serve`'s
        # micro-batcher relies on to stay byte-identical with the sequential
        # oracle.  Large blocks (index builds) keep the stacked matmul.
        if len(features_a) <= _ROW_STATIONARY_MAX_ROWS:
            bt = features_b.units.T
            opinion = np.vstack([row @ bt for row in features_a.units])
        else:
            opinion = features_a.units @ features_b.units.T
        np.clip(opinion, 0.0, 1.0, out=opinion)
        # Equal normalised phrases are defined as 1.0 (even when both OOV).
        opinion[features_a.opinions[:, None] == features_b.opinions[None, :]] = 1.0
        # Aspect channel: gather from the concept-pair Wu–Palmer table
        # (padded so gid -1 → 0), then the exact-surface-equality override.
        table = self.taxonomy.pair_table_padded()
        aspect = table[features_a.concepts[:, None], features_b.concepts[None, :]]
        aspect[features_a.surfaces[:, None] == features_b.surfaces[None, :]] = 1.0
        score = np.sqrt(aspect) * (self.opinion_floor + (1.0 - self.opinion_floor) * opinion)
        score[aspect <= 0.0] = 0.0
        np.clip(score, 0.0, 1.0, out=score)
        return score

    def tag_similarity_matrix(self, tags_a: Sequence, tags_b: Sequence) -> np.ndarray:
        """Full pairwise similarity block, ``result[i, j] = sim(a[i], b[j])``.

        Accepts :class:`SubjectiveTag` objects or raw (aspect, opinion)
        tuples.  Agrees with the scalar :meth:`tag_similarity` to ≤ 1e-9 on
        every entry — the scalar path stays the reference oracle.
        """
        return self.similarity_block(self.tag_features(tags_a), self.tag_features(tags_b))
