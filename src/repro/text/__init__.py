"""``repro.text`` — lexical knowledge and light NLP for the synthetic domains.

Replaces NLTK + the paper's external lexical resources: tokenisation, domain
lexicons (aspects, opinions, idioms), an is-a concept taxonomy with
Wu–Palmer similarity, the conceptual tag-similarity oracle of Section 3.1,
a POS lexicon and the chunking constituency parser used by the pairing
heuristic of Section 5.1.
"""

from repro.text.concepts import ConceptTaxonomy
from repro.text.lexicon import (
    AspectConcept,
    DomainLexicon,
    OpinionWord,
    electronics_lexicon,
    hotel_lexicon,
    lexicon_for_domain,
    restaurant_lexicon,
)
from repro.text.parser import ChunkParser
from repro.text.pos import PosLexicon
from repro.text.similarity import ConceptualSimilarity, TagFeatures
from repro.text.tokenize import detokenize, word_tokenize
from repro.text.vocab import TagVocabulary
from repro.text.tree import ParseNode

__all__ = [
    "AspectConcept",
    "ChunkParser",
    "ConceptTaxonomy",
    "ConceptualSimilarity",
    "DomainLexicon",
    "OpinionWord",
    "ParseNode",
    "PosLexicon",
    "TagFeatures",
    "TagVocabulary",
    "detokenize",
    "electronics_lexicon",
    "hotel_lexicon",
    "lexicon_for_domain",
    "restaurant_lexicon",
    "word_tokenize",
]
