"""Tag vocabulary: interning subjective tags for the vectorized kernel.

The index-side linear algebra (Eq. 1 degrees, Algorithm 1 similar-tag
expansion) operates over integer tag ids rather than tag objects.  The
vocabulary interns every distinct tag seen at registration/indexing time to
a dense id and resolves its kernel features — normalised opinion form,
taxonomy concept, unit opinion embedding — exactly once, so no hot-path call
ever re-normalises a phrase or re-walks the taxonomy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.text.similarity import ConceptualSimilarity, TagFeatures

__all__ = ["TagVocabulary"]


class TagVocabulary:
    """Bidirectional tag ↔ integer-id mapping with cached kernel features.

    Tags may be :class:`~repro.core.tags.SubjectiveTag` objects or raw
    (aspect, opinion) tuples — anything hashable with a ``pair`` attribute
    or 2-tuple shape.  Feature arrays grow incrementally: interning is O(1)
    amortised and :meth:`features` extends its cached columnar arrays only
    by the newly interned suffix.
    """

    def __init__(self, similarity: ConceptualSimilarity):
        self.similarity = similarity
        self._ids: Dict[object, int] = {}
        self._tags: List[object] = []
        self._profiles: List[object] = []
        self._features: Optional[TagFeatures] = None
        self._features_len = 0

    # -------------------------------------------------------------- interning

    def intern(self, tag) -> int:
        """Id for ``tag``, assigning the next dense id on first sight."""
        tag_id = self._ids.get(tag)
        if tag_id is not None:
            return tag_id
        tag_id = len(self._tags)
        self._ids[tag] = tag_id
        self._tags.append(tag)
        self._profiles.append(self.similarity.tag_profile(tag))
        return tag_id

    def intern_many(self, tags: Iterable) -> List[int]:
        """Intern a batch, returning ids in input order."""
        return [self.intern(tag) for tag in tags]

    # ---------------------------------------------------------------- lookups

    def __len__(self) -> int:
        return len(self._tags)

    def __contains__(self, tag) -> bool:
        return tag in self._ids

    def id_of(self, tag) -> Optional[int]:
        """Id of an already-interned tag, or ``None``."""
        return self._ids.get(tag)

    def tag_of(self, tag_id: int):
        """The tag object interned under ``tag_id``."""
        return self._tags[tag_id]

    @property
    def tags(self) -> List[object]:
        """All interned tags in id order."""
        return list(self._tags)

    # --------------------------------------------------------------- features

    def features(self) -> TagFeatures:
        """Columnar kernel features covering the whole vocabulary."""
        if self._features is None:
            self._features = self.similarity.profile_features(self._profiles)
        elif self._features_len < len(self._tags):
            new = self.similarity.profile_features(self._profiles[self._features_len :])
            old = self._features
            self._features = TagFeatures(
                concepts=np.concatenate([old.concepts, new.concepts]),
                surfaces=np.concatenate([old.surfaces, new.surfaces]),
                opinions=np.concatenate([old.opinions, new.opinions]),
                units=np.vstack([old.units, new.units]),
            )
        self._features_len = len(self._tags)
        return self._features

    def features_range(self, start: int, stop: int) -> TagFeatures:
        """Feature slice for vocabulary ids ``[start, stop)``."""
        full = self.features()
        return TagFeatures(
            concepts=full.concepts[start:stop],
            surfaces=full.surfaces[start:stop],
            opinions=full.opinions[start:stop],
            units=full.units[start:stop],
        )

    def similarity_rows(self, tags: Sequence) -> np.ndarray:
        """(len(tags) × len(vocab)) similarity block against the vocabulary."""
        return self.similarity.similarity_block(
            self.similarity.tag_features(tags), self.features()
        )
