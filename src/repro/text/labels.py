"""IOB label scheme for aspect/opinion sequence tagging (Section 4).

Labels: ``B-AS``/``I-AS`` (aspect), ``B-OP``/``I-OP`` (opinion), ``O``.
Helpers convert between token-span and label-sequence views and enumerate
the transitions the IOB grammar forbids (used to constrain the CRF).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = [
    "LABELS",
    "LABEL_TO_ID",
    "ID_TO_LABEL",
    "NUM_LABELS",
    "spans_to_labels",
    "labels_to_spans",
    "forbidden_transitions",
    "is_valid_transition",
]

LABELS: List[str] = ["O", "B-AS", "I-AS", "B-OP", "I-OP"]
LABEL_TO_ID: Dict[str, int] = {label: i for i, label in enumerate(LABELS)}
ID_TO_LABEL: Dict[int, str] = {i: label for i, label in enumerate(LABELS)}
NUM_LABELS = len(LABELS)

Span = Tuple[int, int]  # [start, end) token indices


def spans_to_labels(
    length: int,
    aspect_spans: Sequence[Span],
    opinion_spans: Sequence[Span],
) -> List[str]:
    """Render aspect/opinion spans as an IOB label sequence.

    Spans are half-open ``[start, end)`` token ranges and must not overlap.
    """
    labels = ["O"] * length
    for spans, prefix in ((aspect_spans, "AS"), (opinion_spans, "OP")):
        for start, end in spans:
            if not (0 <= start < end <= length):
                raise ValueError(f"span ({start}, {end}) out of bounds for length {length}")
            if any(labels[i] != "O" for i in range(start, end)):
                raise ValueError(f"span ({start}, {end}) overlaps an existing span")
            labels[start] = f"B-{prefix}"
            for i in range(start + 1, end):
                labels[i] = f"I-{prefix}"
    return labels


def labels_to_spans(labels: Sequence[str]) -> Tuple[List[Span], List[Span]]:
    """Extract (aspect_spans, opinion_spans) from an IOB label sequence.

    Tolerant of malformed sequences (an ``I-`` without a ``B-`` starts a new
    span), matching standard chunking-evaluation conventions.
    """
    aspects: List[Span] = []
    opinions: List[Span] = []
    current_kind: str = ""
    start = 0
    for i, label in enumerate(list(labels) + ["O"]):  # sentinel flushes last span
        kind = label.split("-")[-1] if label != "O" else ""
        begins = label.startswith("B-") or (kind and kind != current_kind)
        if current_kind and (begins or not kind):
            (aspects if current_kind == "AS" else opinions).append((start, i))
            current_kind = ""
        if kind and (label.startswith("B-") or not current_kind):
            current_kind = kind
            start = i
    return aspects, opinions


def is_valid_transition(prev_label: str, next_label: str) -> bool:
    """Whether ``prev -> next`` obeys the IOB grammar.

    ``I-X`` may only follow ``B-X`` or ``I-X``.
    """
    if next_label.startswith("I-"):
        kind = next_label[2:]
        return prev_label in (f"B-{kind}", f"I-{kind}")
    return True


def forbidden_transitions() -> List[Tuple[int, int]]:
    """All (from_id, to_id) pairs the IOB grammar forbids."""
    return [
        (LABEL_TO_ID[a], LABEL_TO_ID[b])
        for a in LABELS
        for b in LABELS
        if not is_valid_transition(a, b)
    ]
