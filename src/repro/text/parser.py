"""Deterministic chunking constituency parser.

Produces the trees consumed by the pairing heuristic of Section 5.1.  The
grammar is a shallow chunker:

* the token stream is split into **sentences** at ``. ! ?``;
* each sentence is split into **clauses** at strong boundaries (``but``,
  ``while``, ``;``) and at ``and``/`,` boundaries that separate two verbful
  spans (so "friendly, helpful and professional" stays together but
  "the food is great and the staff is nice" splits);
* inside a clause, tokens are grouped into NP / VP / ADJP chunks.

The resulting structure has exactly the property the paper relies on:
aspect/opinion words in different clauses or sentences are separated by more
tree edges than words within the same clause.  It also shares the documented
failure modes — long single-clause ramblings collapse to near-word-distance,
and missing punctuation merges sentences.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.text.pos import ADJ, ADV, CONJ, DET, NEG, NOUN, PREP, PRON, PUNCT, VERB, PosLexicon
from repro.text.tokenize import SENTENCE_PUNCT
from repro.text.tree import ParseNode

__all__ = ["ChunkParser"]

_STRONG_BOUNDARY = {"but", "while", "though", "although", ";"}


class ChunkParser:
    """Parser over tokens of one domain's synthetic language."""

    def __init__(self, pos_lexicon: PosLexicon):
        self.pos = pos_lexicon

    # ------------------------------------------------------------------ API

    def parse(self, tokens: Sequence[str]) -> ParseNode:
        """Parse a token sequence into a ROOT tree with indexed leaves."""
        tags = self.pos.tag_sequence(list(tokens))
        indexed = list(enumerate(zip(tokens, tags)))
        sentences = self._split(indexed, self._is_sentence_end, include_boundary=True)
        sentence_nodes = []
        for sentence in sentences:
            clauses = self._split_clauses(sentence)
            clause_nodes = [self._chunk_clause(clause) for clause in clauses if clause]
            sentence_nodes.append(ParseNode("S", clause_nodes))
        return ParseNode("ROOT", sentence_nodes)

    # ------------------------------------------------------------- splitting

    @staticmethod
    def _is_sentence_end(item: Tuple[int, Tuple[str, str]]) -> bool:
        _, (token, _) = item
        return token in SENTENCE_PUNCT

    @staticmethod
    def _split(items, predicate, include_boundary: bool) -> List[list]:
        groups: List[list] = [[]]
        for item in items:
            if predicate(item):
                if include_boundary:
                    groups[-1].append(item)
                groups.append([])
            else:
                groups[-1].append(item)
        return [g for g in groups if g]

    def _split_clauses(self, sentence: List) -> List[list]:
        """Split a sentence's tokens into clauses.

        ``but``/``while`` always split.  ``and`` and ``,`` split only when a
        verb occurs on both sides, which keeps coordinated adjective lists in
        one clause.
        """
        verb_positions = [i for i, (_, (_, tag)) in enumerate(sentence) if tag == VERB]

        def verb_before_and_after(pos: int) -> bool:
            return any(v < pos for v in verb_positions) and any(v > pos for v in verb_positions)

        clauses: List[list] = [[]]
        for i, item in enumerate(sentence):
            _, (token, tag) = item
            is_strong = token in _STRONG_BOUNDARY
            is_weak = token in {"and", ","} and verb_before_and_after(i)
            if is_strong or is_weak:
                clauses[-1].append(item)  # the boundary token closes its clause
                clauses.append([])
            else:
                clauses[-1].append(item)
        return [c for c in clauses if c]

    # -------------------------------------------------------------- chunking

    def _chunk_clause(self, clause: List) -> ParseNode:
        chunks: List[ParseNode] = []
        i = 0
        n = len(clause)

        def leaf(position: int) -> ParseNode:
            index, (token, tag) = clause[position]
            return ParseNode(tag, token=token, token_index=index)

        def tag_at(position: int) -> str:
            return clause[position][1][1]

        def token_at(position: int) -> str:
            return clause[position][1][0]

        while i < n:
            tag = tag_at(i)
            if tag in (DET, PRON) or tag == NOUN:
                # NP: (DET|PRON)? (ADJ|NOUN)* NOUN  — greedy noun phrase.
                j = i
                if tag in (DET, PRON):
                    j += 1
                k = j
                while k < n and tag_at(k) in (ADJ, NOUN):
                    k += 1
                # Require the phrase to end in a NOUN; back off over trailing ADJs.
                while k > j and tag_at(k - 1) != NOUN:
                    k -= 1
                if k > j:
                    chunks.append(ParseNode("NP", [leaf(p) for p in range(i, k)]))
                    i = k
                    continue
                chunks.append(leaf(i))
                i += 1
            elif tag == VERB:
                # VP: VERB+ NEG?
                j = i
                while j < n and tag_at(j) in (VERB, NEG):
                    j += 1
                chunks.append(ParseNode("VP", [leaf(p) for p in range(i, j)]))
                i = j
            elif tag in (ADJ, ADV, NEG):
                # ADJP: (ADV|NEG)* ADJ ((, | and) (ADV)* ADJ)*
                j = i
                while j < n and tag_at(j) in (ADV, NEG):
                    j += 1
                if j < n and tag_at(j) == ADJ:
                    j += 1
                    while j < n and tag_at(j) == ADJ:
                        j += 1
                    # absorb coordinated adjectives: ", adj" / "and adj"
                    while j < n:
                        if token_at(j) in {",", "and"} and j + 1 < n:
                            k = j + 1
                            while k < n and tag_at(k) in (ADV, NEG):
                                k += 1
                            if k < n and tag_at(k) == ADJ:
                                j = k + 1
                                while j < n and tag_at(j) == ADJ:
                                    j += 1
                                continue
                        break
                    chunks.append(ParseNode("ADJP", [leaf(p) for p in range(i, j)]))
                    i = j
                else:
                    chunks.append(leaf(i))
                    i += 1
            elif tag == PREP:
                # PP: PREP + following NP absorbed flatly.
                j = i + 1
                if j < n and tag_at(j) in (DET, PRON):
                    j += 1
                while j < n and tag_at(j) in (ADJ, NOUN):
                    j += 1
                chunks.append(ParseNode("PP", [leaf(p) for p in range(i, j)]))
                i = j
            else:
                chunks.append(leaf(i))
                i += 1
        return ParseNode("CL", chunks)
