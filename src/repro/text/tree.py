"""Parse-tree data structure with leaf-to-leaf distances.

The tree-based pairing heuristic (Section 5.1) measures the distance between
an aspect leaf and an opinion leaf through the tree; words in separate
clauses/sentences sit in separate subtrees and are therefore farther apart
than raw word distance suggests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["ParseNode"]


class ParseNode:
    """A node in a constituency parse tree.

    Leaves carry the original ``token_index`` so distances can be queried by
    position in the token sequence.
    """

    def __init__(
        self,
        label: str,
        children: Optional[List["ParseNode"]] = None,
        token: Optional[str] = None,
        token_index: Optional[int] = None,
    ):
        self.label = label
        self.children: List[ParseNode] = children or []
        self.token = token
        self.token_index = token_index

    @property
    def is_leaf(self) -> bool:
        return self.token_index is not None

    # -------------------------------------------------------------- queries

    def leaves(self) -> List["ParseNode"]:
        """All leaf nodes in order."""
        if self.is_leaf:
            return [self]
        out: List[ParseNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def _paths_to_leaves(self) -> Dict[int, Tuple[int, ...]]:
        """Map token_index -> path of child positions from the root."""
        paths: Dict[int, Tuple[int, ...]] = {}

        def walk(node: "ParseNode", path: Tuple[int, ...]) -> None:
            if node.is_leaf:
                paths[node.token_index] = path
                return
            for i, child in enumerate(node.children):
                walk(child, path + (i,))

        walk(self, ())
        return paths

    def leaf_distance(self, index_a: int, index_b: int) -> int:
        """Number of tree edges on the path between two leaves.

        Raises :class:`KeyError` if either token index is not a leaf.
        """
        paths = self._paths_to_leaves()
        path_a, path_b = paths[index_a], paths[index_b]
        common = 0
        for step_a, step_b in zip(path_a, path_b):
            if step_a != step_b:
                break
            common += 1
        return (len(path_a) - common) + (len(path_b) - common)

    # ------------------------------------------------------------ rendering

    def pretty(self, indent: int = 0) -> str:
        """Bracketed multi-line rendering (debugging / examples)."""
        pad = "  " * indent
        if self.is_leaf:
            return f"{pad}({self.label} {self.token})"
        inner = "\n".join(child.pretty(indent + 1) for child in self.children)
        return f"{pad}({self.label}\n{inner}\n{pad})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_leaf:
            return f"({self.label} {self.token})"
        return f"({self.label} ...{len(self.children)} children)"
