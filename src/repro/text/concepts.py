"""Concept taxonomy over aspect concepts and Wu–Palmer-style similarity.

Section 3.1 of the paper uses "conceptual similarity" — similarity that knows
*pizza* is a kind of *food* — to match review tags against index tags.  The
paper leaves its construction out of scope; we implement a concrete instance:
an is-a taxonomy (a :mod:`networkx` arborescence rooted at ``entity``) with
Wu–Palmer similarity ``2·depth(lca) / (depth(a) + depth(b))``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.text.lexicon import DomainLexicon

__all__ = ["ConceptTaxonomy"]


class ConceptTaxonomy:
    """Is-a hierarchy over a domain's aspect concepts."""

    def __init__(self, lexicon: DomainLexicon):
        self.lexicon = lexicon
        self.graph = nx.DiGraph()  # edges point parent -> child
        for concept in lexicon.aspects.values():
            self.graph.add_node(concept.name)
            if concept.parent is not None:
                self.graph.add_edge(concept.parent, concept.name)
        roots = [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]
        if len(roots) != 1:
            raise ValueError(f"taxonomy must have exactly one root, found {roots}")
        self.root = roots[0]
        self._depth: Dict[str, int] = nx.shortest_path_length(self.graph, self.root)
        self._surface_index = lexicon.aspect_surface_index()

    # ---------------------------------------------------------------- lookup

    def concept_of(self, surface: str) -> Optional[str]:
        """Concept name for a surface form (``'pizza'`` → ``'pizza'`` concept)."""
        return self._surface_index.get(surface.lower())

    def depth(self, concept: str) -> int:
        """Distance from the root (root itself has depth 0)."""
        return self._depth[concept]

    def ancestors_with_self(self, concept: str) -> List[str]:
        """Path from ``concept`` up to the root, inclusive."""
        path = [concept]
        while path[-1] != self.root:
            parents = list(self.graph.predecessors(path[-1]))
            path.append(parents[0])
        return path

    def lowest_common_ancestor(self, a: str, b: str) -> str:
        """The deepest concept that is an ancestor of both ``a`` and ``b``."""
        ancestors_a = set(self.ancestors_with_self(a))
        for node in self.ancestors_with_self(b):
            if node in ancestors_a:
                return node
        return self.root

    # ------------------------------------------------------------ similarity

    def wu_palmer(self, a: str, b: str) -> float:
        """Wu–Palmer similarity between two concepts, in (0, 1]."""
        if a not in self.graph or b not in self.graph:
            raise KeyError(f"unknown concepts: {a!r}, {b!r}")
        lca = self.lowest_common_ancestor(a, b)
        denom = self.depth(a) + self.depth(b)
        if denom == 0:
            return 1.0  # both are the root
        return 2.0 * self.depth(lca) / denom

    def surface_similarity(self, surface_a: str, surface_b: str) -> float:
        """Wu–Palmer similarity between two aspect *surface forms*.

        Unknown surfaces fall back to exact-match semantics (1.0 if equal
        strings, else 0.0) so the function is total.
        """
        if surface_a.lower() == surface_b.lower():
            return 1.0
        concept_a = self.concept_of(surface_a)
        concept_b = self.concept_of(surface_b)
        if concept_a is None or concept_b is None:
            return 0.0
        if concept_a == concept_b:
            return 1.0
        return self.wu_palmer(concept_a, concept_b)
