"""Concept taxonomy over aspect concepts and Wu–Palmer-style similarity.

Section 3.1 of the paper uses "conceptual similarity" — similarity that knows
*pizza* is a kind of *food* — to match review tags against index tags.  The
paper leaves its construction out of scope; we implement a concrete instance:
an is-a taxonomy (a :mod:`networkx` arborescence rooted at ``entity``) with
Wu–Palmer similarity ``2·depth(lca) / (depth(a) + depth(b))``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.text.lexicon import DomainLexicon

__all__ = ["ConceptTaxonomy"]


class ConceptTaxonomy:
    """Is-a hierarchy over a domain's aspect concepts."""

    def __init__(self, lexicon: DomainLexicon):
        self.lexicon = lexicon
        self.graph = nx.DiGraph()  # edges point parent -> child
        for concept in lexicon.aspects.values():
            self.graph.add_node(concept.name)
            if concept.parent is not None:
                self.graph.add_edge(concept.parent, concept.name)
        roots = [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]
        if len(roots) != 1:
            raise ValueError(f"taxonomy must have exactly one root, found {roots}")
        self.root = roots[0]
        self._depth: Dict[str, int] = nx.shortest_path_length(self.graph, self.root)
        self._surface_index = lexicon.aspect_surface_index()
        #: stable concept ordering for the vectorized kernel's pair table.
        self._concepts: List[str] = list(self.graph.nodes)
        self._concept_index: Dict[str, int] = {c: i for i, c in enumerate(self._concepts)}
        self._pair_table: Optional[np.ndarray] = None
        self._pair_table_padded: Optional[np.ndarray] = None

    # ---------------------------------------------------------------- lookup

    def concept_of(self, surface: str) -> Optional[str]:
        """Concept name for a surface form (``'pizza'`` → ``'pizza'`` concept)."""
        return self._surface_index.get(surface.lower())

    def depth(self, concept: str) -> int:
        """Distance from the root (root itself has depth 0)."""
        return self._depth[concept]

    def ancestors_with_self(self, concept: str) -> List[str]:
        """Path from ``concept`` up to the root, inclusive."""
        path = [concept]
        while path[-1] != self.root:
            parents = list(self.graph.predecessors(path[-1]))
            path.append(parents[0])
        return path

    def lowest_common_ancestor(self, a: str, b: str) -> str:
        """The deepest concept that is an ancestor of both ``a`` and ``b``."""
        ancestors_a = set(self.ancestors_with_self(a))
        for node in self.ancestors_with_self(b):
            if node in ancestors_a:
                return node
        return self.root

    @property
    def concepts(self) -> List[str]:
        """All concept names in the table ordering used by the kernel."""
        return list(self._concepts)

    def concept_index(self, concept: str) -> int:
        """Integer id of a concept (row/column into :meth:`pair_table`)."""
        return self._concept_index[concept]

    # ------------------------------------------------------------ similarity

    def pair_table(self) -> np.ndarray:
        """Full Wu–Palmer table over all concepts, computed once and cached.

        Memoizes similarity per *concept pair* rather than per surface-form
        pair: every surface resolving to the same concept shares one entry.
        """
        if self._pair_table is None:
            n = len(self._concepts)
            table = np.ones((n, n))
            for i in range(n):
                for j in range(i + 1, n):
                    table[i, j] = table[j, i] = self.wu_palmer(self._concepts[i], self._concepts[j])
            self._pair_table = table
        return self._pair_table

    def pair_table_padded(self) -> np.ndarray:
        """:meth:`pair_table` with a zero row/column appended.

        Unknown concepts are encoded as id ``-1``; indexing the padded table
        with ``-1`` lands on the zero row, so unknown aspects score 0 without
        any masking.
        """
        if self._pair_table_padded is None:
            self._pair_table_padded = np.pad(self.pair_table(), ((0, 1), (0, 1)))
        return self._pair_table_padded

    def wu_palmer(self, a: str, b: str) -> float:
        """Wu–Palmer similarity between two concepts, in (0, 1]."""
        if a not in self.graph or b not in self.graph:
            raise KeyError(f"unknown concepts: {a!r}, {b!r}")
        lca = self.lowest_common_ancestor(a, b)
        denom = self.depth(a) + self.depth(b)
        if denom == 0:
            return 1.0  # both are the root
        return 2.0 * self.depth(lca) / denom

    def surface_similarity(self, surface_a: str, surface_b: str) -> float:
        """Wu–Palmer similarity between two aspect *surface forms*.

        Unknown surfaces fall back to exact-match semantics (1.0 if equal
        strings, else 0.0) so the function is total.
        """
        if surface_a.lower() == surface_b.lower():
            return 1.0
        concept_a = self.concept_of(surface_a)
        concept_b = self.concept_of(surface_b)
        if concept_a is None or concept_b is None:
            return 0.0
        if concept_a == concept_b:
            return 1.0
        return self.wu_palmer(concept_a, concept_b)
