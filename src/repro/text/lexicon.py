"""Domain lexicons: aspect concepts, opinion words and their semantics.

The paper works over three review domains (restaurants, electronics, hotels).
Because the offline environment has no Yelp/SemEval corpora, the lexicons
below define the *vocabulary of subjectivity* from which the synthetic data
generators realise reviews, and against which similarity and tagging are
evaluated.  Each opinion word carries a polarity and the aspect topics it
typically describes; each aspect concept carries its surface forms and its
taxonomy parent (used by conceptual similarity, e.g. *pizza* is-a *food*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "AspectConcept",
    "OpinionWord",
    "DomainLexicon",
    "restaurant_lexicon",
    "electronics_lexicon",
    "hotel_lexicon",
    "lexicon_for_domain",
]


@dataclass(frozen=True)
class AspectConcept:
    """A reviewable feature of an entity (e.g. food, staff, battery)."""

    name: str
    surfaces: Tuple[str, ...]
    parent: Optional[str] = None

    def __post_init__(self):
        if not self.surfaces:
            raise ValueError(f"aspect concept {self.name!r} needs at least one surface form")


@dataclass(frozen=True)
class OpinionWord:
    """A polarity-bearing expression that can describe aspects.

    ``register`` distinguishes plain adjectives from domain jargon/idioms
    ("a killer", "out of this world") — the paper's Section 4.2 motivates
    domain adaptation with exactly these.
    """

    text: str
    polarity: float
    topics: Tuple[str, ...]
    register: str = "common"

    def __post_init__(self):
        if not -1.0 <= self.polarity <= 1.0:
            raise ValueError(f"polarity out of range for {self.text!r}: {self.polarity}")

    @property
    def is_positive(self) -> bool:
        return self.polarity > 0


@dataclass
class DomainLexicon:
    """All lexical knowledge for one review domain."""

    domain: str
    aspects: Dict[str, AspectConcept] = field(default_factory=dict)
    opinions: List[OpinionWord] = field(default_factory=list)

    # ------------------------------------------------------------- building

    def add_aspect(self, name: str, surfaces: Sequence[str], parent: Optional[str] = None) -> None:
        """Register an aspect concept."""
        self.aspects[name] = AspectConcept(name, tuple(surfaces), parent)

    def add_opinion(
        self,
        text: str,
        polarity: float,
        topics: Sequence[str],
        register: str = "common",
    ) -> None:
        """Register an opinion expression."""
        self.opinions.append(OpinionWord(text, polarity, tuple(topics), register))

    # -------------------------------------------------------------- queries

    def aspect_surface_index(self) -> Dict[str, str]:
        """Map every surface form (lower-case) to its concept name."""
        index: Dict[str, str] = {}
        for concept in self.aspects.values():
            for surface in concept.surfaces:
                index[surface.lower()] = concept.name
        return index

    def opinion_index(self) -> Dict[str, OpinionWord]:
        """Map opinion surface text to its :class:`OpinionWord`."""
        return {op.text.lower(): op for op in self.opinions}

    def opinions_for_topic(self, topic: str, positive: Optional[bool] = None) -> List[OpinionWord]:
        """Opinion words applicable to ``topic``, optionally filtered by sign."""
        result = [op for op in self.opinions if topic in op.topics]
        if positive is not None:
            result = [op for op in result if op.is_positive == positive]
        return result

    def concept_of(self, surface: str) -> Optional[str]:
        """Concept name for an aspect surface form, or ``None``."""
        return self.aspect_surface_index().get(surface.lower())


# --------------------------------------------------------------------------
# Restaurants
# --------------------------------------------------------------------------


def restaurant_lexicon() -> DomainLexicon:
    """The restaurant-domain lexicon used throughout the paper's examples."""
    lex = DomainLexicon("restaurants")

    lex.add_aspect("entity", ["restaurant", "place", "spot", "joint"])
    lex.add_aspect("food", ["food", "meal", "meals", "cuisine", "dish", "dishes"], parent="entity")
    lex.add_aspect("pizza", ["pizza", "pizzas"], parent="food")
    lex.add_aspect("pasta", ["pasta", "spaghetti", "lasagna"], parent="food")
    lex.add_aspect("dessert", ["dessert", "desserts", "tiramisu"], parent="food")
    lex.add_aspect("cooking", ["cooking", "kitchen", "chef"], parent="food")
    lex.add_aspect("ingredients", ["ingredients", "produce"], parent="food")
    lex.add_aspect("menu", ["menu", "la carte", "wine list", "selection"], parent="entity")
    lex.add_aspect("portions", ["portions", "servings", "portion sizes"], parent="food")
    lex.add_aspect("staff", ["staff", "waitstaff", "personnel"], parent="entity")
    lex.add_aspect("waiters", ["waiters", "waiter", "waitress", "servers"], parent="staff")
    lex.add_aspect("service", ["service"], parent="staff")
    lex.add_aspect("delivery", ["delivery", "takeout"], parent="service")
    lex.add_aspect("ambiance", ["ambiance", "atmosphere", "ambience", "vibe", "mood"], parent="entity")
    lex.add_aspect("decor", ["decor", "interior", "furnishings"], parent="ambiance")
    lex.add_aspect("music", ["music", "band", "playlist"], parent="ambiance")
    lex.add_aspect("view", ["view", "scenery", "panorama"], parent="ambiance")
    lex.add_aspect("plates", ["plates", "cutlery", "glasses", "tableware"], parent="entity")
    lex.add_aspect("prices", ["prices", "price", "bill", "cost"], parent="entity")
    lex.add_aspect("cocktails", ["cocktails", "drinks", "wine", "beer"], parent="food")
    lex.add_aspect("location", ["location", "neighborhood", "parking"], parent="entity")

    food_topics = ("food", "pizza", "pasta", "dessert", "cocktails")
    lex.add_opinion("delicious", 0.9, food_topics)
    lex.add_opinion("tasty", 0.8, food_topics)
    lex.add_opinion("good", 0.6, food_topics + ("service", "staff", "ambiance", "menu"))
    lex.add_opinion("great", 0.75, food_topics + ("service", "staff", "ambiance", "view", "cocktails"))
    lex.add_opinion("amazing", 0.9, food_topics + ("view", "ambiance", "cocktails"))
    lex.add_opinion("phenomenal", 0.95, food_topics)
    lex.add_opinion("flavorful", 0.8, food_topics)
    lex.add_opinion("mouthwatering", 0.9, food_topics)
    lex.add_opinion("fresh", 0.8, ("ingredients", "food"))
    lex.add_opinion("stale", -0.7, ("ingredients", "food"))
    lex.add_opinion("bland", -0.6, food_topics)
    lex.add_opinion("tasteless", -0.8, food_topics)
    lex.add_opinion("awful", -0.9, food_topics + ("service", "staff"))
    lex.add_opinion("mediocre", -0.4, food_topics + ("service",))
    lex.add_opinion("creative", 0.85, ("cooking", "menu"))
    lex.add_opinion("inventive", 0.8, ("cooking", "menu"))
    lex.add_opinion("uninspired", -0.6, ("cooking", "menu"))
    lex.add_opinion("varied", 0.7, ("menu",))
    lex.add_opinion("extensive", 0.65, ("menu",))
    lex.add_opinion("limited", -0.5, ("menu",))
    lex.add_opinion("generous", 0.8, ("portions",))
    lex.add_opinion("huge", 0.7, ("portions",))
    lex.add_opinion("tiny", -0.6, ("portions",))
    lex.add_opinion("skimpy", -0.7, ("portions",))
    lex.add_opinion("friendly", 0.85, ("staff", "waiters", "service"))
    lex.add_opinion("nice", 0.7, ("staff", "waiters", "ambiance", "decor", "view"))
    lex.add_opinion("helpful", 0.8, ("staff", "waiters"))
    lex.add_opinion("professional", 0.75, ("staff", "waiters", "service"))
    lex.add_opinion("attentive", 0.8, ("staff", "waiters", "service"))
    lex.add_opinion("rude", -0.9, ("staff", "waiters"))
    lex.add_opinion("unhelpful", -0.7, ("staff", "waiters"))
    lex.add_opinion("dismissive", -0.75, ("staff", "waiters"))
    lex.add_opinion("quick", 0.8, ("service", "delivery"))
    lex.add_opinion("fast", 0.8, ("service", "delivery"))
    lex.add_opinion("prompt", 0.75, ("service", "delivery"))
    lex.add_opinion("slow", -0.7, ("service", "delivery"))
    lex.add_opinion("sluggish", -0.6, ("service", "delivery"))
    lex.add_opinion("terrible", -0.9, ("service", "food", "staff"))
    lex.add_opinion("romantic", 0.85, ("ambiance", "decor", "view"))
    lex.add_opinion("cozy", 0.8, ("ambiance", "decor"))
    lex.add_opinion("warm", 0.7, ("ambiance", "decor"))
    lex.add_opinion("charming", 0.75, ("ambiance", "decor", "view"))
    lex.add_opinion("quiet", 0.7, ("ambiance",))
    lex.add_opinion("calm", 0.65, ("ambiance",))
    lex.add_opinion("peaceful", 0.7, ("ambiance",))
    lex.add_opinion("noisy", -0.7, ("ambiance", "music"))
    lex.add_opinion("loud", -0.6, ("ambiance", "music"))
    lex.add_opinion("deafening", -0.8, ("ambiance", "music"))
    lex.add_opinion("beautiful", 0.85, ("view", "decor", "ambiance"))
    lex.add_opinion("stunning", 0.9, ("view", "decor"))
    lex.add_opinion("breathtaking", 0.95, ("view",))
    lex.add_opinion("dreary", -0.6, ("view", "decor", "ambiance"))
    lex.add_opinion("stylish", 0.75, ("decor",))
    lex.add_opinion("dated", -0.5, ("decor",))
    lex.add_opinion("clean", 0.8, ("plates",))
    lex.add_opinion("spotless", 0.9, ("plates",))
    lex.add_opinion("dirty", -0.9, ("plates",))
    lex.add_opinion("greasy", -0.7, ("plates", "food"))
    lex.add_opinion("fair", 0.7, ("prices",))
    lex.add_opinion("reasonable", 0.7, ("prices",))
    lex.add_opinion("affordable", 0.75, ("prices",))
    lex.add_opinion("cheap", 0.5, ("prices",))
    lex.add_opinion("expensive", -0.6, ("prices",))
    lex.add_opinion("overpriced", -0.8, ("prices",))
    lex.add_opinion("steep", -0.5, ("prices",))
    lex.add_opinion("refreshing", 0.75, ("cocktails",))
    lex.add_opinion("watered down", -0.7, ("cocktails",))
    lex.add_opinion("lively", 0.7, ("music", "ambiance"))
    lex.add_opinion("live", 0.65, ("music",))
    lex.add_opinion("convenient", 0.7, ("location",))
    lex.add_opinion("central", 0.6, ("location",))
    lex.add_opinion("remote", -0.4, ("location",))
    # Domain jargon / idioms (Section 4.2: "La carte of this restaurant is a killer").
    lex.add_opinion("a killer", 0.9, ("menu", "food", "cocktails"), register="idiom")
    lex.add_opinion("out of this world", 0.95, food_topics, register="idiom")
    lex.add_opinion("to die for", 0.9, food_topics, register="idiom")
    lex.add_opinion("on point", 0.8, ("service", "food", "cooking"), register="idiom")
    lex.add_opinion("a letdown", -0.7, ("food", "service", "ambiance"), register="idiom")
    lex.add_opinion("a bit slow", -0.4, ("service", "delivery"), register="idiom")
    lex.add_opinion("hit or miss", -0.3, ("food", "service"), register="idiom")
    return lex


# --------------------------------------------------------------------------
# Electronics (SemEval-14 Laptops analogue) — jargon-heavy by design.
# --------------------------------------------------------------------------


def electronics_lexicon() -> DomainLexicon:
    """Electronics-domain lexicon (brand names and numeric jargon included)."""
    lex = DomainLexicon("electronics")

    lex.add_aspect("entity", ["laptop", "device", "machine", "unit"])
    lex.add_aspect("screen", ["screen", "display", "panel"], parent="entity")
    lex.add_aspect("battery", ["battery", "battery life", "charge"], parent="entity")
    lex.add_aspect("keyboard", ["keyboard", "keys", "trackpad"], parent="entity")
    lex.add_aspect("performance", ["performance", "speed", "processor", "cpu"], parent="entity")
    lex.add_aspect("memory", ["memory", "ram", "storage", "ssd"], parent="performance")
    lex.add_aspect("graphics", ["graphics", "gpu", "video card"], parent="performance")
    lex.add_aspect("build", ["build", "chassis", "hinge", "body"], parent="entity")
    lex.add_aspect("audio", ["speakers", "audio", "sound"], parent="entity")
    lex.add_aspect("software", ["software", "os", "drivers", "firmware"], parent="entity")
    lex.add_aspect("support", ["support", "customer service", "warranty"], parent="entity")
    lex.add_aspect("price", ["price", "cost", "value"], parent="entity")
    lex.add_aspect("ports", ["ports", "usb", "hdmi"], parent="build")
    lex.add_aspect("cooling", ["fans", "cooling", "thermals"], parent="build")

    lex.add_opinion("crisp", 0.8, ("screen",), register="jargon")
    lex.add_opinion("sharp", 0.8, ("screen",))
    lex.add_opinion("vivid", 0.75, ("screen",))
    lex.add_opinion("dim", -0.6, ("screen",))
    lex.add_opinion("washed out", -0.7, ("screen",), register="jargon")
    lex.add_opinion("long lasting", 0.85, ("battery",), register="jargon")
    lex.add_opinion("efficient", 0.7, ("battery", "performance"))
    lex.add_opinion("weak", -0.6, ("battery", "audio", "performance"))
    lex.add_opinion("snappy", 0.8, ("performance", "keyboard"), register="jargon")
    lex.add_opinion("blazing", 0.85, ("performance",), register="jargon")
    lex.add_opinion("responsive", 0.8, ("performance", "keyboard", "screen"))
    lex.add_opinion("laggy", -0.8, ("performance", "software"), register="jargon")
    lex.add_opinion("sluggish", -0.7, ("performance", "software"))
    lex.add_opinion("buggy", -0.8, ("software",), register="jargon")
    lex.add_opinion("stable", 0.7, ("software",))
    lex.add_opinion("bloated", -0.6, ("software",), register="jargon")
    lex.add_opinion("comfortable", 0.75, ("keyboard",))
    lex.add_opinion("mushy", -0.6, ("keyboard",), register="jargon")
    lex.add_opinion("clicky", 0.6, ("keyboard",), register="jargon")
    lex.add_opinion("sturdy", 0.8, ("build",))
    lex.add_opinion("solid", 0.75, ("build",))
    lex.add_opinion("flimsy", -0.7, ("build",))
    lex.add_opinion("creaky", -0.6, ("build",), register="jargon")
    lex.add_opinion("premium", 0.7, ("build",))
    lex.add_opinion("rich", 0.7, ("audio",))
    lex.add_opinion("tinny", -0.7, ("audio",), register="jargon")
    lex.add_opinion("loud", 0.5, ("audio",))
    lex.add_opinion("muffled", -0.6, ("audio",))
    lex.add_opinion("helpful", 0.8, ("support",))
    lex.add_opinion("responsive", 0.75, ("support",))
    lex.add_opinion("useless", -0.9, ("support",))
    lex.add_opinion("slow", -0.6, ("support", "performance"))
    lex.add_opinion("reasonable", 0.7, ("price",))
    lex.add_opinion("overpriced", -0.8, ("price",))
    lex.add_opinion("unbeatable", 0.85, ("price",), register="jargon")
    lex.add_opinion("plentiful", 0.7, ("ports", "memory"))
    lex.add_opinion("scarce", -0.6, ("ports",))
    lex.add_opinion("quiet", 0.75, ("cooling",))
    lex.add_opinion("whiny", -0.7, ("cooling",), register="jargon")
    lex.add_opinion("hot", -0.6, ("cooling",))
    lex.add_opinion("cool", 0.6, ("cooling",))
    lex.add_opinion("future proof", 0.7, ("memory", "performance"), register="jargon")
    lex.add_opinion("cramped", -0.5, ("memory", "keyboard"))
    return lex


# --------------------------------------------------------------------------
# Hotels (Booking.com analogue)
# --------------------------------------------------------------------------


def hotel_lexicon() -> DomainLexicon:
    """Hotel-domain lexicon (the paper's S4 / pairing training domain)."""
    lex = DomainLexicon("hotels")

    lex.add_aspect("entity", ["hotel", "property", "place"])
    lex.add_aspect("room", ["room", "suite", "bedroom"], parent="entity")
    lex.add_aspect("bed", ["bed", "mattress", "pillows"], parent="room")
    lex.add_aspect("bathroom", ["bathroom", "shower", "tub"], parent="room")
    lex.add_aspect("staff", ["staff", "reception", "concierge"], parent="entity")
    lex.add_aspect("breakfast", ["breakfast", "buffet", "brunch"], parent="entity")
    lex.add_aspect("location", ["location", "neighborhood", "area"], parent="entity")
    lex.add_aspect("lobby", ["lobby", "entrance", "hall"], parent="entity")
    lex.add_aspect("pool", ["pool", "spa", "gym"], parent="entity")
    lex.add_aspect("wifi", ["wifi", "internet", "connection"], parent="entity")
    lex.add_aspect("price", ["price", "rate", "cost"], parent="entity")
    lex.add_aspect("view", ["view", "balcony", "window"], parent="room")

    lex.add_opinion("spacious", 0.8, ("room", "lobby", "bathroom"))
    lex.add_opinion("cramped", -0.6, ("room", "bathroom"))
    lex.add_opinion("clean", 0.85, ("room", "bathroom", "pool", "lobby"))
    lex.add_opinion("spotless", 0.9, ("room", "bathroom"))
    lex.add_opinion("filthy", -0.9, ("room", "bathroom"))
    lex.add_opinion("dusty", -0.6, ("room", "lobby"))
    lex.add_opinion("comfy", 0.85, ("bed", "room"), register="jargon")
    lex.add_opinion("comfortable", 0.8, ("bed", "room"))
    lex.add_opinion("lumpy", -0.7, ("bed",))
    lex.add_opinion("firm", 0.5, ("bed",))
    lex.add_opinion("friendly", 0.85, ("staff",))
    lex.add_opinion("welcoming", 0.8, ("staff", "lobby"))
    lex.add_opinion("courteous", 0.75, ("staff",))
    lex.add_opinion("rude", -0.9, ("staff",))
    lex.add_opinion("indifferent", -0.6, ("staff",))
    lex.add_opinion("delicious", 0.85, ("breakfast",))
    lex.add_opinion("fresh", 0.8, ("breakfast",))
    lex.add_opinion("varied", 0.7, ("breakfast",))
    lex.add_opinion("meager", -0.6, ("breakfast",))
    lex.add_opinion("cold", -0.5, ("breakfast", "pool"))
    lex.add_opinion("central", 0.75, ("location",))
    lex.add_opinion("convenient", 0.75, ("location",))
    lex.add_opinion("noisy", -0.7, ("location", "room"))
    lex.add_opinion("quiet", 0.75, ("location", "room"))
    lex.add_opinion("elegant", 0.8, ("lobby", "room"))
    lex.add_opinion("grand", 0.7, ("lobby",))
    lex.add_opinion("shabby", -0.6, ("lobby", "room"))
    lex.add_opinion("heated", 0.6, ("pool",))
    lex.add_opinion("refreshing", 0.7, ("pool",))
    lex.add_opinion("crowded", -0.5, ("pool", "lobby"))
    lex.add_opinion("fast", 0.8, ("wifi",))
    lex.add_opinion("reliable", 0.8, ("wifi",))
    lex.add_opinion("spotty", -0.7, ("wifi",), register="jargon")
    lex.add_opinion("unusable", -0.9, ("wifi",))
    lex.add_opinion("fair", 0.7, ("price",))
    lex.add_opinion("reasonable", 0.7, ("price",))
    lex.add_opinion("outrageous", -0.8, ("price",))
    lex.add_opinion("stunning", 0.9, ("view",))
    lex.add_opinion("gorgeous", 0.85, ("view",))
    lex.add_opinion("bleak", -0.6, ("view",))
    return lex


_BUILDERS = {
    "restaurants": restaurant_lexicon,
    "electronics": electronics_lexicon,
    "hotels": hotel_lexicon,
}


def lexicon_for_domain(domain: str) -> DomainLexicon:
    """Construct the lexicon for one of the three supported domains."""
    try:
        return _BUILDERS[domain]()
    except KeyError:
        raise KeyError(f"unknown domain {domain!r}; expected one of {sorted(_BUILDERS)}") from None
