"""Word tokenisation shared by the data generators, parser and models."""

from __future__ import annotations

import re
from typing import List

__all__ = ["word_tokenize", "detokenize", "SENTENCE_PUNCT"]

SENTENCE_PUNCT = {".", "!", "?"}

_TOKEN_RE = re.compile(r"[a-zA-Z']+|[0-9]+(?:\.[0-9]+)?|[.,!?;:]")


def word_tokenize(text: str, lowercase: bool = True) -> List[str]:
    """Split text into word and punctuation tokens.

    >>> word_tokenize("The food is great, really!")
    ['the', 'food', 'is', 'great', ',', 'really', '!']
    """
    tokens = _TOKEN_RE.findall(text)
    if lowercase:
        tokens = [t.lower() for t in tokens]
    return tokens


def detokenize(tokens: List[str]) -> str:
    """Join tokens back into a readable string (punctuation un-spaced)."""
    out: List[str] = []
    for token in tokens:
        if token in {".", ",", "!", "?", ";", ":"} and out:
            out[-1] = out[-1] + token
        else:
            out.append(token)
    return " ".join(out)
