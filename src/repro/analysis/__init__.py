"""Static analysis enforcing this repo's concurrency and determinism invariants.

``repro.analysis`` is a stdlib-``ast`` lint framework purpose-built for the
SACCS reproduction: the serving stack's guarantee that every fast path is
byte-identical to its scalar oracle rests on conventions (hold the lock,
seed the RNG, stable sorts, explicit dtypes) that unit tests cannot police
exhaustively.  The analyzer turns those conventions into machine-checked
rules with inline suppressions and a committed baseline, wired into the
tier-1 test suite via ``repro lint``.

Public surface:

* :func:`run_analysis` / :func:`analyze_source` — run the rule set;
* :func:`all_rules` / :class:`Rule` / :class:`Finding` — the rule model;
* :func:`load_baseline` / :func:`write_baseline` — baseline management;
* :func:`render_human` / :func:`render_json` — reporters.
"""

from repro.analysis.baseline import load_baseline, partition_findings, write_baseline
from repro.analysis.engine import (
    AnalysisResult,
    FileReport,
    analyze_source,
    iter_python_files,
    run_analysis,
)
from repro.analysis.registry import Finding, Rule, all_rules, get_rule, rules_by_family
from repro.analysis.reporters import render_human, render_json, result_payload
from repro.analysis.suppressions import SuppressionIndex

__all__ = [
    "AnalysisResult",
    "FileReport",
    "Finding",
    "Rule",
    "SuppressionIndex",
    "all_rules",
    "analyze_source",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "partition_findings",
    "render_human",
    "render_json",
    "result_payload",
    "rules_by_family",
    "run_analysis",
    "write_baseline",
]
