"""Inline suppression comments: ``# repro: disable=<rule-id>[,<rule-id>...]``.

A suppression on the same line as a finding silences it; a *comment-only*
line silences the next code line (for statements too long to annotate
inline).  ``disable=all`` silences every rule on that line.  Suppressions
are deliberately line-scoped — block- or file-level escapes would let a
whole module drift out from under an invariant, which is exactly what the
baseline file (reviewed, committed, diffable) is for instead.
"""

from __future__ import annotations

import re
from typing import Dict, Sequence, Set

from repro.analysis.registry import Finding

__all__ = ["SuppressionIndex", "SUPPRESSION_PATTERN"]

SUPPRESSION_PATTERN = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_,\s\-]+)")
_COMMENT_ONLY = re.compile(r"^\s*#")


class SuppressionIndex:
    """Per-file map of line number → rule ids suppressed on that line."""

    def __init__(self, lines: Sequence[str]):
        self._by_line: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            match = SUPPRESSION_PATTERN.search(text)
            if not match:
                continue
            rule_ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            self._add(lineno, rule_ids)
            if _COMMENT_ONLY.match(text):
                # A standalone suppression covers the first code line below
                # it, skipping the rest of its comment block (justifications
                # may continue on following comment lines).
                target = lineno + 1
                while target <= len(lines) and _COMMENT_ONLY.match(lines[target - 1]):
                    target += 1
                self._add(target, rule_ids)

    def _add(self, lineno: int, rule_ids: Set[str]) -> None:
        self._by_line.setdefault(lineno, set()).update(rule_ids)

    def is_suppressed(self, finding: Finding) -> bool:
        rule_ids = self._by_line.get(finding.line)
        if not rule_ids:
            return False
        return "all" in rule_ids or finding.rule_id in rule_ids

    def __len__(self) -> int:
        return len(self._by_line)
