"""Inline suppression comments: ``# repro: disable=<rule-id>[,<rule-id>...]``.

A suppression on the same line as a finding silences it; a *comment-only*
line silences the next code line (for statements too long to annotate
inline).  ``disable=all`` silences every rule on that line.  Suppressions
are deliberately line-scoped — block- or file-level escapes would let a
whole module drift out from under an invariant, which is exactly what the
baseline file (reviewed, committed, diffable) is for instead.

When the parsed tree is available the index additionally understands two
shapes where "the next code line" and "the line the finding anchors to"
disagree:

* **decorated definitions** — findings on a ``def``/``class`` anchor at the
  keyword line, but a comment-block suppression above the definition lands
  on the first *decorator* line.  The span from the first decorator through
  the end of the signature forwards onto the anchor.
* **multi-line statements** — a suppression on any physical line of a
  simple statement (a continuation argument, the closing paren) covers the
  statement's anchor line.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Optional, Sequence, Set

from repro.analysis.registry import Finding

__all__ = ["SuppressionIndex", "SUPPRESSION_PATTERN"]

SUPPRESSION_PATTERN = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_,\s\-]+)")
_COMMENT_ONLY = re.compile(r"^\s*#")

#: Compound statements whose body lines must NOT forward suppressions onto
#: the header — only the header span itself (decorators + signature) does.
_COMPOUND = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


class SuppressionIndex:
    """Per-file map of line number → rule ids suppressed on that line."""

    def __init__(self, lines: Sequence[str], tree: Optional[ast.Module] = None):
        self._by_line: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            match = SUPPRESSION_PATTERN.search(text)
            if not match:
                continue
            rule_ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            self._add(lineno, rule_ids)
            if _COMMENT_ONLY.match(text):
                # A standalone suppression covers the first code line below
                # it, skipping the rest of its comment block (justifications
                # may continue on following comment lines).
                target = lineno + 1
                while target <= len(lines) and _COMMENT_ONLY.match(lines[target - 1]):
                    target += 1
                self._add(target, rule_ids)
        if tree is not None and self._by_line:
            self._attach_statement_spans(tree)

    def _add(self, lineno: int, rule_ids: Set[str]) -> None:
        self._by_line.setdefault(lineno, set()).update(rule_ids)

    # ---------------------------------------------------------------- spans

    def _attach_statement_spans(self, tree: ast.Module) -> None:
        """Forward span-covered suppressions onto each statement's anchor."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.stmt):
                continue
            anchor = node.lineno
            start = anchor
            end = anchor
            decorators = getattr(node, "decorator_list", None)
            if decorators:
                start = min(d.lineno for d in decorators)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                # Signature lines only — the body may hold comment-block
                # suppressions aimed at its own first statement, which must
                # not leak onto the def line.
                end = self._signature_end(node)
            elif not isinstance(node, _COMPOUND):
                end = getattr(node, "end_lineno", None) or anchor
            if start == anchor and end == anchor:
                continue
            gathered: Set[str] = set()
            for line in range(start, end + 1):
                if line == anchor:
                    continue
                gathered.update(self._by_line.get(line, ()))
            if gathered:
                self._add(anchor, gathered)

    @staticmethod
    def _signature_end(node: ast.stmt) -> int:
        end = node.lineno
        args = getattr(node, "args", None)
        if args is not None and getattr(args, "end_lineno", None):
            end = max(end, args.end_lineno)
        returns = getattr(node, "returns", None)
        if returns is not None and getattr(returns, "end_lineno", None):
            end = max(end, returns.end_lineno)
        if isinstance(node, ast.ClassDef):
            for base in list(node.bases) + [kw.value for kw in node.keywords]:
                if getattr(base, "end_lineno", None):
                    end = max(end, base.end_lineno)
        return end

    # --------------------------------------------------------------- lookup

    def is_suppressed(self, finding: Finding) -> bool:
        rule_ids = self._by_line.get(finding.line)
        if not rule_ids:
            return False
        return "all" in rule_ids or finding.rule_id in rule_ids

    def __len__(self) -> int:
        return len(self._by_line)
