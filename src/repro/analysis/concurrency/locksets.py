"""Held-lock-set propagation, the lock-order graph, cycles, blocking calls.

Three phases over the :class:`~repro.analysis.concurrency.callgraph.Program`:

1. **contextmanager yields** — for every ``@contextmanager`` function,
   the set of locks lexically held at its ``yield`` (those are what a
   ``with cm():`` caller holds for the body — e.g. ``SessionStore.checkout``
   holds the per-session entry lock at yield, while ``MetricsRegistry.time``
   holds nothing because it only takes its lock in the ``finally``).
2. **summaries** — a fixpoint over the call graph computing, per function,
   ``may_acquire`` (lock name → first acquisition site anywhere in the
   function or its callees) and ``may_block`` (the first reachable
   known-blocking call).  Recursion converges because both sets only grow.
3. **emission** — a lexical re-walk of every function tracking the held
   stack: ``with`` nesting yields direct order edges; resolved call sites
   yield ``held → may_acquire(callee)`` edges; blocking calls (direct or
   via ``may_block``) under a non-empty held set yield findings.

The result is under-approximate (unresolved dynamic dispatch drops edges)
and over-approximate (a callee's conditional acquisition counts as always
taken) in the standard static-analysis ways; DESIGN.md §16 spells out the
trade and the runtime witness covers the gap.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import call_name
from repro.analysis.concurrency.callgraph import FunctionInfo, LockDef, Program
from repro.analysis.registry import ParsedModule

__all__ = ["OrderEdge", "BlockingSite", "LockCycle", "LockReport", "analyze_program"]

Site = Tuple[str, int]  # (path, line)

#: Module-level callables that block the calling thread.
_BLOCKING_DOTTED = {
    "time.sleep",
    "urllib.request.urlopen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
}

#: Method names that block regardless of receiver type.  The repo-specific
#: entries (``prepare_rebuild`` / ``rebuild_index``) are the long
#: re-extraction passes: holding any serving lock across one stalls the
#: world, which is exactly what the double-buffered rebuild exists to avoid.
_BLOCKING_METHODS = {
    "sendall",
    "recv",
    "accept",
    "serve_forever",
    "prepare_rebuild",
    "rebuild_index",
}

#: Queue constructor names (``queue.Queue()`` etc.) — ``get``/``put`` on one
#: of these without a timeout blocks indefinitely.
_QUEUE_CTORS = {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"}


@dataclass(frozen=True)
class OrderEdge:
    """``src`` was held while ``dst`` was acquired (first observation)."""

    src: str
    dst: str
    src_site: Site
    dst_site: Site
    via: str  # "" for a lexical with-nesting, else the call that led there


@dataclass(frozen=True)
class BlockingSite:
    """A known-blocking call made while at least one lock was held."""

    held: Tuple[Tuple[str, Site], ...]
    desc: str
    path: str
    line: int


@dataclass(frozen=True)
class LockCycle:
    """One strongly connected component of the lock-order graph."""

    names: Tuple[str, ...]
    edges: Tuple[OrderEdge, ...]

    @property
    def anchor(self) -> Site:
        return min(edge.dst_site for edge in self.edges)


@dataclass
class LockReport:
    """Everything the CLI / rules need from one analysis run."""

    locks: Dict[str, LockDef] = field(default_factory=dict)
    acquisitions: Dict[str, List[Site]] = field(default_factory=dict)
    edges: Dict[Tuple[str, str], OrderEdge] = field(default_factory=dict)
    blocking: List[BlockingSite] = field(default_factory=list)
    cycles: List[LockCycle] = field(default_factory=list)
    #: deterministic topological order of the graph when acyclic (cycles
    #: collapse to their sorted-first member so the order stays total).
    order: List[str] = field(default_factory=list)


@dataclass
class _Summary:
    may_acquire: Dict[str, Site] = field(default_factory=dict)
    may_block: Optional[Tuple[str, Site]] = None  # (description, site)
    callees: List[str] = field(default_factory=list)


class _FunctionPass:
    """One lexical walk of a function body with a held-lock stack."""

    def __init__(
        self,
        program: Program,
        func: FunctionInfo,
        held_at_yield: Dict[str, Dict[str, Site]],
        summaries: Optional[Dict[str, _Summary]],
        report: Optional[LockReport],
    ):
        self.program = program
        self.func = func
        self.path = func.module.path
        self.held_at_yield = held_at_yield
        self.summaries = summaries  # None during the yield pre-pass
        self.report = report  # None until the emission pass
        self.local_types = program.local_types(func)
        self.local_queues: Set[str] = set()
        self.summary = _Summary()
        self.yield_locks: Dict[str, Site] = {}
        self.held: List[Tuple[str, Site]] = []

    # ------------------------------------------------------------------ entry

    def run(self) -> None:
        self.walk_block(self.func.node.body)

    # ------------------------------------------------------------- traversal

    def walk_block(self, stmts: Sequence[ast.stmt]) -> None:
        depth = len(self.held)
        for stmt in stmts:
            self.visit_stmt(stmt)
        del self.held[depth:]

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are separate call-graph nodes (or invisible)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.visit_with(stmt)
            return
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            ctor = call_name(stmt.value)
            if ctor is not None and ctor.split(".")[-1] in _QUEUE_CTORS:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.local_queues.add(target.id)
        # Compound statements: scan only the header expression — their
        # bodies are walked below with the right held stack (ast.walk over
        # the whole node would visit body calls twice).
        if isinstance(stmt, (ast.If, ast.While)):
            self.scan_expressions(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.scan_expressions(stmt.iter)
        elif isinstance(stmt, ast.Try):
            pass
        else:
            self.scan_expressions(stmt)
        explicit = self._explicit_acquire_release(stmt)
        if explicit is not None:
            lock, action, line = explicit
            if action == "acquire":
                self.note_acquire(lock, (self.path, line))
            else:
                self.note_release(lock)
        for block in self._sub_blocks(stmt):
            self.walk_block(block)

    @staticmethod
    def _sub_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
        blocks: List[List[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            body = getattr(stmt, attr, None)
            if body:
                blocks.append(body)
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks

    def visit_with(self, stmt: ast.stmt) -> None:
        acquired = 0
        for item in stmt.items:
            expr = item.context_expr
            lock = self.program.resolve_lock(expr, self.func, self.local_types)
            if lock is not None:
                self.note_acquire(lock, (self.path, expr.lineno))
                acquired += 1
                continue
            if isinstance(expr, ast.Call):
                self.handle_call(expr)
                callee = self.program.resolve_callee(expr, self.func, self.local_types)
                if callee is not None and callee.is_contextmanager:
                    for name, site in self.held_at_yield.get(callee.qualname, {}).items():
                        self.note_acquire_name(name, "lock", site, (self.path, expr.lineno))
                        acquired += 1
        depth = len(self.held)
        self.walk_block(stmt.body)
        # note_acquire pushed `acquired` entries; walk_block restored to
        # its own entry depth, so trim ours explicitly.
        del self.held[depth - acquired :]

    def scan_expressions(self, root: ast.AST) -> None:
        """Visit every call / yield in an expression (or simple-stmt) tree."""
        for node in ast.walk(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                for name, site in self.held:
                    self.yield_locks.setdefault(name, site)
            elif isinstance(node, ast.Call):
                self.handle_call(node)

    # -------------------------------------------------------------- acquires

    def note_acquire(self, lock: LockDef, site: Site) -> None:
        self.note_acquire_name(lock.name, lock.kind, site, site, definition=lock)

    def note_acquire_name(
        self,
        name: str,
        kind: str,
        acquire_site: Site,
        local_site: Site,
        definition: Optional[LockDef] = None,
    ) -> None:
        self.summary.may_acquire.setdefault(name, acquire_site)
        if self.report is not None:
            if definition is not None:
                self.report.locks.setdefault(name, definition)
            self.report.acquisitions.setdefault(name, []).append(local_site)
            for held_name, held_site in self.held:
                if held_name == name:
                    continue
                self.report.edges.setdefault(
                    (held_name, name),
                    OrderEdge(
                        src=held_name,
                        dst=name,
                        src_site=held_site,
                        dst_site=local_site,
                        via="",
                    ),
                )
        self.held.append((name, local_site))

    def note_release(self, lock: LockDef) -> None:
        for position in range(len(self.held) - 1, -1, -1):
            if self.held[position][0] == lock.name:
                del self.held[position]
                return

    def _explicit_acquire_release(
        self, stmt: ast.stmt
    ) -> Optional[Tuple[LockDef, str, int]]:
        """``self._lock.acquire()`` / ``.release()`` as a bare statement."""
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return None
        call = stmt.value
        if not isinstance(call.func, ast.Attribute) or call.func.attr not in (
            "acquire",
            "release",
        ):
            return None
        lock = self.program.resolve_lock(call.func.value, self.func, self.local_types)
        if lock is None:
            return None
        return lock, call.func.attr, call.lineno

    # ----------------------------------------------------------------- calls

    def handle_call(self, call: ast.Call) -> None:
        line = call.lineno
        blocking = self._blocking_desc(call)
        if blocking is not None:
            held = self._held_for_blocking(call)
            if self.summary.may_block is None:
                self.summary.may_block = (blocking, (self.path, line))
            if self.report is not None and held:
                self._report_blocking(held, blocking, line)
        callee = self.program.resolve_callee(call, self.func, self.local_types)
        if callee is None or callee.qualname == self.func.qualname:
            return
        self.summary.callees.append(callee.qualname)
        if self.summaries is None or not self.held:
            return
        callee_summary = self.summaries.get(callee.qualname)
        if callee_summary is None:
            return
        if self.report is not None:
            for name, site in sorted(callee_summary.may_acquire.items()):
                for held_name, held_site in self.held:
                    if held_name == name:
                        continue
                    self.report.edges.setdefault(
                        (held_name, name),
                        OrderEdge(
                            src=held_name,
                            dst=name,
                            src_site=held_site,
                            dst_site=site,
                            via=f"{callee.short} called at {self.path}:{line}",
                        ),
                    )
            if blocking is None and callee_summary.may_block is not None:
                desc, site = callee_summary.may_block
                self._report_blocking(
                    list(self.held),
                    f"{desc} (reached via {callee.short}, {site[0]}:{site[1]})",
                    line,
                )

    def _report_blocking(
        self, held: List[Tuple[str, Site]], desc: str, line: int
    ) -> None:
        assert self.report is not None
        self.report.blocking.append(
            BlockingSite(held=tuple(held), desc=desc, path=self.path, line=line)
        )

    def _held_for_blocking(self, call: ast.Call) -> List[Tuple[str, Site]]:
        """Held set minus the receiver's own lock (``cond.wait`` releases it)."""
        held = list(self.held)
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "wait":
            receiver = self.program.resolve_lock(func.value, self.func, self.local_types)
            if receiver is not None:
                held = [entry for entry in held if entry[0] != receiver.name]
        return held

    def _blocking_desc(self, call: ast.Call) -> Optional[str]:
        name = call_name(call)
        if name is None:
            return None
        if name in _BLOCKING_DOTTED:
            return name
        last = name.split(".")[-1]
        if last in _BLOCKING_METHODS:
            return last
        has_timeout = any(
            kw.arg == "timeout" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            )
            for kw in call.keywords
        )
        if last == "wait" and not call.args and not has_timeout:
            return "wait()"
        if last in ("get", "put") and not has_timeout:
            if self._is_queue(call.func):
                return f"queue.{last}"
        return None

    def _is_queue(self, func: ast.AST) -> bool:
        if not isinstance(func, ast.Attribute):
            return False
        receiver = func.value
        if isinstance(receiver, ast.Name):
            return receiver.id in self.local_queues
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and self.func.cls is not None
        ):
            return receiver.attr in _queue_attrs(self.func.cls.node)
        return False


def _queue_attrs(class_node: ast.ClassDef) -> Set[str]:
    attrs: Set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = getattr(node, "value", None)
        if not isinstance(value, ast.Call):
            continue
        ctor = call_name(value)
        if ctor is None or ctor.split(".")[-1] not in _QUEUE_CTORS:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return attrs


# ---------------------------------------------------------------- top level


def analyze_program(modules: Sequence[ParsedModule]) -> LockReport:
    """Run the whole pass and return the populated :class:`LockReport`."""
    program = Program.build(modules)
    ordered = sorted(program.functions.values(), key=lambda f: f.qualname)

    # Phase 1: locks held at yield inside @contextmanager functions.
    held_at_yield: Dict[str, Dict[str, Site]] = {}
    for func in ordered:
        if not func.is_contextmanager:
            continue
        walk = _FunctionPass(program, func, {}, None, None)
        walk.run()
        held_at_yield[func.qualname] = walk.yield_locks

    # Phase 2: fixpoint may_acquire / may_block summaries.
    summaries: Dict[str, _Summary] = {}
    for func in ordered:
        walk = _FunctionPass(program, func, held_at_yield, None, None)
        walk.run()
        summaries[func.qualname] = walk.summary
    changed = True
    while changed:
        changed = False
        for func in ordered:
            summary = summaries[func.qualname]
            for callee in summary.callees:
                callee_summary = summaries.get(callee)
                if callee_summary is None:
                    continue
                for name, site in callee_summary.may_acquire.items():
                    if name not in summary.may_acquire:
                        summary.may_acquire[name] = site
                        changed = True
                if summary.may_block is None and callee_summary.may_block is not None:
                    summary.may_block = callee_summary.may_block
                    changed = True

    # Phase 3: emission.
    report = LockReport()
    for func in ordered:
        walk = _FunctionPass(program, func, held_at_yield, summaries, report)
        walk.run()

    # Also register never-acquired locks so the inventory is complete.
    for info in program.classes.values():
        for lock in info.lock_attrs.values():
            report.locks.setdefault(lock.name, lock)
    for globals_ in program.global_locks.values():
        for lock in globals_.values():
            report.locks.setdefault(lock.name, lock)

    report.blocking = sorted(
        set(report.blocking), key=lambda b: (b.path, b.line, b.desc)
    )
    report.cycles = _find_cycles(report.edges)
    report.order = _topological_order(report)
    return report


def _find_cycles(edges: Dict[Tuple[str, str], OrderEdge]) -> List[LockCycle]:
    """Strongly connected components with ≥2 members, as cycle findings."""
    graph: Dict[str, List[str]] = {}
    for src, dst in edges:
        if src == dst:
            continue
        graph.setdefault(src, []).append(dst)
        graph.setdefault(dst, [])
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    def strongconnect(node: str) -> None:
        # Iterative Tarjan: (node, neighbor-iterator) frames.
        work = [(node, iter(sorted(graph[node])))]
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, neighbors = work[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor not in index:
                    index[neighbor] = low[neighbor] = counter[0]
                    counter[0] += 1
                    stack.append(neighbor)
                    on_stack.add(neighbor)
                    work.append((neighbor, iter(sorted(graph[neighbor]))))
                    advanced = True
                    break
                if neighbor in on_stack:
                    low[current] = min(low[current], index[neighbor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index[current]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    cycles: List[LockCycle] = []
    for component in sorted(components):
        members = set(component)
        involved = tuple(
            edge
            for (src, dst), edge in sorted(edges.items())
            if src in members and dst in members and src != dst
        )
        cycles.append(LockCycle(names=tuple(component), edges=involved))
    return cycles


def _topological_order(report: LockReport) -> List[str]:
    """Kahn's algorithm with sorted tie-breaking; cycle members grouped."""
    nodes = sorted(report.locks)
    incoming: Dict[str, Set[str]] = {name: set() for name in nodes}
    outgoing: Dict[str, Set[str]] = {name: set() for name in nodes}
    in_cycle = {name for cycle in report.cycles for name in cycle.names}
    for (src, dst), _ in sorted(report.edges.items()):
        if src == dst or src not in incoming or dst not in incoming:
            continue
        if src in in_cycle and dst in in_cycle:
            continue  # collapse cycles so the order stays total
        outgoing[src].add(dst)
        incoming[dst].add(src)
    order: List[str] = []
    ready = sorted(name for name in nodes if not incoming[name])
    while ready:
        name = ready.pop(0)
        order.append(name)
        for succ in sorted(outgoing[name]):
            incoming[succ].discard(name)
            if not incoming[succ] and succ not in order and succ not in ready:
                ready.append(succ)
        ready.sort()
    for name in nodes:  # anything left sits inside a cycle
        if name not in order:
            order.append(name)
    return order
