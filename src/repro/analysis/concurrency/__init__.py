"""Whole-program concurrency analysis: lock-order graph + deadlock detection.

The pass builds a project-wide view of every lock (named factory locks and
raw ``threading`` primitives), every acquisition site, and the call graph
connecting them; propagates held-lock sets interprocedurally; and reports

* **cycles** in the resulting lock-order graph (potential deadlocks), and
* **locks held across known-blocking calls** (queue waits, socket sends,
  ``prepare_rebuild``-class rebuild work).

``repro locks`` renders the graph (human tree / JSON / Graphviz dot); the
``concurrency`` rule family feeds the same findings through the lint
engine's suppression/baseline triage so the tier-1 guard enforces a clean
``src/``.  The dynamic counterpart lives in :mod:`repro.utils.locks`.
"""

from repro.analysis.concurrency.callgraph import ClassInfo, FunctionInfo, LockDef, Program
from repro.analysis.concurrency.locksets import (
    BlockingSite,
    LockCycle,
    LockReport,
    OrderEdge,
    analyze_program,
)
from repro.analysis.concurrency.report import (
    render_dot,
    render_locks_human,
    report_payload,
)

__all__ = [
    "BlockingSite",
    "ClassInfo",
    "FunctionInfo",
    "LockCycle",
    "LockDef",
    "LockReport",
    "OrderEdge",
    "Program",
    "analyze_program",
    "render_dot",
    "render_locks_human",
    "report_payload",
]
