"""Renderers for ``repro locks``: human tree, JSON payload, Graphviz dot."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.concurrency.locksets import LockReport

__all__ = ["render_locks_human", "report_payload", "render_dot"]


def _site(site) -> str:
    return f"{site[0]}:{site[1]}"


def render_locks_human(report: LockReport) -> str:
    """The lock hierarchy as an indented tree plus problem sections."""
    out: List[str] = []
    out.append(f"{len(report.locks)} locks, {len(report.edges)} order edges")
    out.append("")
    out.append("lock hierarchy (outermost first):")
    children: Dict[str, List[str]] = {}
    has_parent = set()
    for (src, dst) in sorted(report.edges):
        if src != dst:
            children.setdefault(src, []).append(dst)
            has_parent.add(dst)
    roots = [name for name in report.order if name not in has_parent]

    def emit(name: str, depth: int, seen: tuple) -> None:
        lock = report.locks.get(name)
        where = f"  ({lock.path}:{lock.line}, {lock.kind})" if lock else ""
        count = len(report.acquisitions.get(name, []))
        out.append(f"{'  ' * depth}- {name}{where}  [{count} acquisition sites]")
        if name in seen:
            out.append(f"{'  ' * (depth + 1)}… cycle back to {name}")
            return
        for child in sorted(children.get(name, [])):
            emit(child, depth + 1, seen + (name,))

    for root in roots:
        emit(root, 1, ())

    if report.cycles:
        out.append("")
        out.append("potential deadlock cycles:")
        for cycle in report.cycles:
            out.append(f"  {' <-> '.join(cycle.names)}")
            for edge in cycle.edges:
                via = f"  [{edge.via}]" if edge.via else ""
                out.append(
                    f"    {edge.src} (held {_site(edge.src_site)}) -> "
                    f"{edge.dst} (acquired {_site(edge.dst_site)}){via}"
                )
    if report.blocking:
        out.append("")
        out.append("locks held across blocking calls:")
        for site in report.blocking:
            held = ", ".join(name for name, _ in site.held)
            out.append(f"  {site.path}:{site.line}  {site.desc}  holding {held}")
    out.append("")
    out.append(
        f"{len(report.cycles)} cycles, {len(report.blocking)} blocking-under-lock sites"
    )
    return "\n".join(out)


def report_payload(report: LockReport) -> Dict[str, Any]:
    """JSON-serialisable view of the raw graph (pre-triage)."""
    return {
        "locks": {
            name: {
                "kind": lock.kind,
                "path": lock.path,
                "line": lock.line,
                "acquisitions": len(report.acquisitions.get(name, [])),
            }
            for name, lock in sorted(report.locks.items())
        },
        "order": list(report.order),
        "edges": [
            {
                "src": edge.src,
                "dst": edge.dst,
                "src_site": _site(edge.src_site),
                "dst_site": _site(edge.dst_site),
                "via": edge.via,
            }
            for _, edge in sorted(report.edges.items())
        ],
        "cycles": [
            {
                "locks": list(cycle.names),
                "edges": [
                    {
                        "src": edge.src,
                        "dst": edge.dst,
                        "src_site": _site(edge.src_site),
                        "dst_site": _site(edge.dst_site),
                    }
                    for edge in cycle.edges
                ],
            }
            for cycle in report.cycles
        ],
        "blocking": [
            {
                "path": site.path,
                "line": site.line,
                "call": site.desc,
                "held": [
                    {"lock": name, "since": _site(where)} for name, where in site.held
                ],
            }
            for site in report.blocking
        ],
        "summary": {
            "locks": len(report.locks),
            "edges": len(report.edges),
            "cycles": len(report.cycles),
            "blocking": len(report.blocking),
        },
    }


def render_dot(report: LockReport) -> str:
    """The lock-order graph in Graphviz dot (cycle edges highlighted)."""
    in_cycle = {name for cycle in report.cycles for name in cycle.names}
    out: List[str] = ["digraph lock_order {", "  rankdir=TB;", '  node [shape=box, fontname="monospace"];']
    for name, lock in sorted(report.locks.items()):
        attrs = [f'label="{name}\\n{lock.path}:{lock.line}"']
        if name in in_cycle:
            attrs.append('color=red style=filled fillcolor="#ffdddd"')
        out.append(f'  "{name}" [{" ".join(attrs)}];')
    for (src, dst), edge in sorted(report.edges.items()):
        attrs = [f'label="{_site(edge.dst_site)}"']
        if src in in_cycle and dst in in_cycle:
            attrs.append("color=red penwidth=2")
        if edge.via:
            attrs.append("style=dashed")
        out.append(f'  "{src}" -> "{dst}" [{" ".join(attrs)}];')
    out.append("}")
    return "\n".join(out)


def render_locks_json(report: LockReport) -> str:
    return json.dumps(report_payload(report), indent=2, sort_keys=True)
