"""Project-wide call graph and lock-object resolution over parsed modules.

This is deliberately a *cheap* whole-program model — stdlib ``ast`` only,
no symbolic execution — tuned to the idioms this codebase actually uses:

* locks are class attributes assigned in ``__init__`` (``self._lock =
  make_lock("serve.cache")``) or module-level constants;
* object types flow through constructor assignments (``self.sessions =
  SessionStore(...)``), annotated parameters, annotated locals, and
  return annotations (``def _acquire_entry(...) -> _Entry``);
* calls are ``self.method()``, ``obj.method()`` on a resolvable ``obj``,
  same-module functions, or ``from``-imported names.

Anything the model cannot resolve it drops silently — the analysis is
under-approximate by design (documented in DESIGN.md §16); the runtime
witness covers the paths static resolution cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.astutil import call_name
from repro.analysis.registry import ParsedModule

__all__ = ["LockDef", "ClassInfo", "FunctionInfo", "Program"]

#: Factory callables whose call expression *creates a lock object*.  The
#: repro factories carry the order name as their first string argument;
#: raw threading primitives get a synthesised ``Owner.attr`` name.
_NAMED_FACTORIES = {"make_lock", "make_rlock"}
_RAW_FACTORIES = {"Lock", "RLock", "Condition", "TrackedLock", "TrackedRLock"}


@dataclass(frozen=True)
class LockDef:
    """One lock object the program creates.

    ``name`` is the order name every acquisition of this object shares —
    the factory's string argument when present, else a synthesised
    ``Class.attr`` / ``module.VAR`` label.  ``kind`` distinguishes rlocks
    (reentrant self-edges are not ordering violations).
    """

    name: str
    kind: str  # "lock" | "rlock" | "condition"
    path: str
    line: int


@dataclass
class ClassInfo:
    qualname: str  # module.Class
    name: str
    module: str
    node: ast.ClassDef
    path: str
    #: attribute name → qualified class name (best-effort)
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attribute name → the lock assigned to it
    lock_attrs: Dict[str, LockDef] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    qualname: str  # module.func or module.Class.method
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    module: ParsedModule
    cls: Optional[ClassInfo] = None
    is_contextmanager: bool = False

    @property
    def short(self) -> str:
        parts = self.qualname.rsplit(".", 2)
        return ".".join(parts[-2:]) if self.cls is not None else parts[-1]


def _constructor_class(call: ast.AST) -> Optional[str]:
    """The (unresolved) class name when ``call`` looks like ``Name(...)``."""
    if isinstance(call, ast.IfExp):
        # ``store if store is not None else TraceStore()`` — either branch.
        return _constructor_class(call.body) or _constructor_class(call.orelse)
    if not isinstance(call, ast.Call):
        return None
    name = call_name(call)
    if name is None:
        return None
    last = name.split(".")[-1]
    return name if last[:1].isupper() else None


def _annotation_name(annotation: Optional[ast.AST]) -> Optional[str]:
    """``X`` from ``X`` / ``"X"`` / ``Optional[X]`` annotations."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        parts = []
        node: ast.AST = annotation
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None
    if isinstance(annotation, ast.Subscript):
        outer = _annotation_name(annotation.value)
        if outer and outer.split(".")[-1] == "Optional":
            return _annotation_name(annotation.slice)
    return None


def _lock_from_call(
    call: ast.AST, owner_label: str, attr: str, path: str
) -> Optional[LockDef]:
    """A :class:`LockDef` when ``call`` constructs a lock, else ``None``."""
    if not isinstance(call, ast.Call):
        return None
    callee = call_name(call)
    if callee is None:
        return None
    last = callee.split(".")[-1]
    if last in _NAMED_FACTORIES:
        kind = "rlock" if last == "make_rlock" else "lock"
        if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
            call.args[0].value, str
        ):
            name = call.args[0].value
        else:
            name = f"{owner_label}.{attr}"
        return LockDef(name=name, kind=kind, path=path, line=call.lineno)
    if last in _RAW_FACTORIES:
        kind = "rlock" if "RLock" in last else ("condition" if last == "Condition" else "lock")
        return LockDef(name=f"{owner_label}.{attr}", kind=kind, path=path, line=call.lineno)
    return None


class Program:
    """The resolved whole-program view the lock pass works over."""

    def __init__(self) -> None:
        self.modules: List[ParsedModule] = []
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: module name → local alias → fully qualified target
        self.imports: Dict[str, Dict[str, str]] = {}
        #: module name → global var → LockDef (module-level locks)
        self.global_locks: Dict[str, Dict[str, LockDef]] = {}
        #: short class name → qualnames (for annotation strings like "_Entry")
        self._by_class_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ build

    @classmethod
    def build(cls, modules: Sequence[ParsedModule]) -> "Program":
        program = cls()
        for module in modules:
            program._index_module(module)
        for module in modules:
            program._infer_attr_types(module)
        return program

    def _index_module(self, module: ParsedModule) -> None:
        self.modules.append(module)
        mod_name = module.module_name
        imports = self.imports.setdefault(mod_name, {})
        globals_ = self.global_locks.setdefault(mod_name, {})
        short_mod = mod_name.rsplit(".", 1)[-1] or mod_name
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
            elif isinstance(node, ast.Assign):
                lock = _lock_from_call(
                    node.value, short_mod, getattr(node.targets[0], "id", "?"), module.path
                )
                if lock is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            globals_[target.id] = lock
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, node, None)

    def _index_class(self, module: ParsedModule, node: ast.ClassDef) -> None:
        qualname = f"{module.module_name}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            name=node.name,
            module=module.module_name,
            node=node,
            path=module.path,
        )
        self.classes[qualname] = info
        self._by_class_name.setdefault(node.name, []).append(qualname)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, child, info)

    def _index_function(
        self,
        module: ParsedModule,
        node: ast.AST,
        cls_info: Optional[ClassInfo],
    ) -> None:
        prefix = cls_info.qualname if cls_info is not None else module.module_name
        qualname = f"{prefix}.{node.name}"
        is_cm = any(
            (call_name(d) or _annotation_name(d) or "").split(".")[-1] == "contextmanager"
            for d in node.decorator_list
        )
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            node=node,
            module=module,
            cls=cls_info,
            is_contextmanager=is_cm,
        )

    # ------------------------------------------------------- attribute typing

    def _infer_attr_types(self, module: ParsedModule) -> None:
        for info in self.classes.values():
            if info.module != module.module_name:
                continue
            for child in info.node.body:
                if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                annotated: Dict[str, Optional[str]] = {}
                args = child.args
                for arg in list(args.args) + list(args.kwonlyargs):
                    annotated[arg.arg] = _annotation_name(arg.annotation)
                for node in ast.walk(child):
                    attr, value = self._self_attr_assign(node)
                    if attr is None:
                        continue
                    lock = _lock_from_call(value, info.name, attr, info.path)
                    if lock is not None:
                        info.lock_attrs.setdefault(attr, lock)
                        continue
                    type_name = _constructor_class(value)
                    if type_name is None and isinstance(value, ast.Name):
                        type_name = annotated.get(value.id)
                    if type_name is None and isinstance(value, ast.IfExp):
                        # ``x if x is not None else Ctor()`` — try the
                        # annotated name on either branch too.
                        for branch in (value.body, value.orelse):
                            if isinstance(branch, ast.Name):
                                type_name = annotated.get(branch.id)
                                if type_name:
                                    break
                    if type_name is not None:
                        resolved = self.resolve_class(type_name, info.module)
                        if resolved is not None:
                            info.attr_types.setdefault(attr, resolved)

    @staticmethod
    def _self_attr_assign(node: ast.AST) -> Tuple[Optional[str], Optional[ast.AST]]:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            return None, None
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr, value
        return None, None

    # ------------------------------------------------------------- resolution

    def resolve_class(self, name: str, from_module: str) -> Optional[str]:
        """Qualified class name for ``name`` as written inside ``from_module``."""
        if name in self.classes:
            return name
        short = name.split(".")[-1]
        candidate = f"{from_module}.{short}"
        if candidate in self.classes:
            return candidate
        imported = self.imports.get(from_module, {}).get(name.split(".")[0])
        if imported is not None:
            target = imported if "." not in name else f"{imported}.{name.split('.', 1)[1]}"
            if target in self.classes:
                return target
        # Unique short-name match (annotation strings like "_Entry").
        owners = self._by_class_name.get(short, [])
        if len(owners) == 1:
            return owners[0]
        return None

    def resolve_function(self, name: str, from_module: str) -> Optional[FunctionInfo]:
        candidate = f"{from_module}.{name}"
        if candidate in self.functions:
            return self.functions[candidate]
        imported = self.imports.get(from_module, {}).get(name)
        if imported is not None and imported in self.functions:
            return self.functions[imported]
        return None

    def method(self, class_qualname: str, method: str) -> Optional[FunctionInfo]:
        return self.functions.get(f"{class_qualname}.{method}")

    def local_types(self, func: FunctionInfo) -> Dict[str, str]:
        """Best-effort local variable → qualified class name for ``func``."""
        types: Dict[str, str] = {}
        module = func.module.module_name
        args = func.node.args
        for arg in list(args.args) + list(args.kwonlyargs):
            resolved = self._resolve_opt(_annotation_name(arg.annotation), module)
            if resolved:
                types[arg.arg] = resolved
        for node in ast.walk(func.node):
            target: Optional[str] = None
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Name):
                    target, value = node.targets[0].id, node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                target, value, annotation = node.target.id, node.value, node.annotation
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        bound = self._with_binding(item.context_expr, func)
                        if bound:
                            types[item.optional_vars.id] = bound
            if target is None:
                continue
            resolved = self._resolve_opt(_annotation_name(annotation), module)
            if resolved is None and value is not None:
                ctor = _constructor_class(value)
                if ctor is not None:
                    resolved = self.resolve_class(ctor, module)
            if resolved is None and isinstance(value, ast.Call):
                callee = self.resolve_callee(value, func, types)
                if callee is not None:
                    resolved = self._resolve_opt(
                        _annotation_name(getattr(callee.node, "returns", None)),
                        callee.module.module_name,
                    )
            if resolved is None and isinstance(value, ast.Attribute):
                resolved = self._attr_chain_type(value, func, types)
            if resolved is not None:
                types[target] = resolved
        return types

    def _with_binding(self, context_expr: ast.AST, func: FunctionInfo) -> Optional[str]:
        """``with self.cm() as x`` — the class ``x`` takes from the cm's yield."""
        if not isinstance(context_expr, ast.Call):
            return None
        callee = self.resolve_callee(context_expr, func, {})
        if callee is None or not callee.is_contextmanager:
            return None
        returns = _annotation_name(getattr(callee.node, "returns", None))
        if returns is None:
            return None
        # ``Iterator[X]`` / ``Generator[X, ...]`` annotations reduce to X via
        # the Optional-style subscript unwrap in _annotation_name only for
        # Optional; handle Iterator/Generator here.
        return self._resolve_opt(returns, callee.module.module_name)

    def _resolve_opt(self, name: Optional[str], module: str) -> Optional[str]:
        if name is None:
            return None
        short = name.split(".")[-1]
        if short in ("Iterator", "Generator", "Iterable", "ContextManager"):
            return None
        return self.resolve_class(name, module)

    def _attr_chain_type(
        self, node: ast.Attribute, func: FunctionInfo, local_types: Dict[str, str]
    ) -> Optional[str]:
        """Type of ``self.attr`` / ``obj.attr`` loads (one level deep)."""
        owner = self.owner_class_of(node.value, func, local_types)
        if owner is None:
            return None
        info = self.classes.get(owner)
        if info is None:
            return None
        return info.attr_types.get(node.attr)

    def owner_class_of(
        self, node: ast.AST, func: FunctionInfo, local_types: Dict[str, str]
    ) -> Optional[str]:
        """The class qualname whose attribute namespace ``node`` denotes."""
        if isinstance(node, ast.Name):
            if node.id == "self" and func.cls is not None:
                return func.cls.qualname
            return local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            inner = self.owner_class_of(node.value, func, local_types)
            if inner is None:
                return None
            info = self.classes.get(inner)
            if info is None:
                return None
            return info.attr_types.get(node.attr)
        return None

    def resolve_lock(
        self, node: ast.AST, func: FunctionInfo, local_types: Dict[str, str]
    ) -> Optional[LockDef]:
        """The lock ``node`` denotes (``self._lock``, ``entry.lock``, global)."""
        if isinstance(node, ast.Name):
            return self.global_locks.get(func.module.module_name, {}).get(node.id)
        if isinstance(node, ast.Attribute):
            owner = self.owner_class_of(node.value, func, local_types)
            if owner is not None:
                info = self.classes.get(owner)
                if info is not None and node.attr in info.lock_attrs:
                    return info.lock_attrs[node.attr]
            # ``module_alias.GLOBAL_LOCK``
            if isinstance(node.value, ast.Name):
                imported = self.imports.get(func.module.module_name, {}).get(node.value.id)
                if imported is not None:
                    return self.global_locks.get(imported, {}).get(node.attr)
        return None

    def resolve_callee(
        self, call: ast.Call, func: FunctionInfo, local_types: Dict[str, str]
    ) -> Optional[FunctionInfo]:
        """The project function a call dispatches to, when resolvable."""
        target = call.func
        if isinstance(target, ast.Name):
            return self.resolve_function(target.id, func.module.module_name)
        if isinstance(target, ast.Attribute):
            owner = self.owner_class_of(target.value, func, local_types)
            if owner is not None:
                found = self.method(owner, target.attr)
                if found is not None:
                    return found
            if isinstance(target.value, ast.Name):
                imported = self.imports.get(func.module.module_name, {}).get(target.value.id)
                if imported is not None:
                    return self.functions.get(f"{imported}.{target.attr}")
        return None
