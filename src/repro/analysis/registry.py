"""Rule registry and the finding model for the static-analysis framework.

A *rule* is a small ``ast``-level check with a stable identifier (the token
used in ``# repro: disable=<rule-id>`` comments and in the committed
baseline), a *family* grouping related invariants, and an optional *scope*
restricting it to the modules where its invariant actually holds (e.g.
``unstable-argsort`` only bites in tie-breaking ranking paths).

Rules register themselves with :func:`register` at import time; the engine
asks :func:`all_rules` for one fresh instance of each.  Registration is
idempotent by rule id so re-imports (pytest, reload) never double-report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Finding",
    "ParsedModule",
    "ProgramRule",
    "Rule",
    "register",
    "all_rules",
    "rules_by_family",
    "get_rule",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at an exact source location.

    ``path`` is root-relative with ``/`` separators so baseline keys are
    portable; ``line``/``col`` are 1-based line and 0-based column straight
    from the ``ast`` node that triggered the rule.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    @property
    def key(self) -> str:
        """Stable identity used by baselines: path, rule and line."""
        return f"{self.path}:{self.rule_id}:{self.line}"


@dataclass
class ParsedModule:
    """One parsed source file as whole-program rules see it.

    ``path`` is the same root-relative posix path findings carry, so a
    program rule's findings triage against suppressions and the baseline
    exactly like per-file findings do.
    """

    path: str
    tree: ast.Module
    lines: Sequence[str] = field(default_factory=list)

    @property
    def module_name(self) -> str:
        """Dotted module name guessed from the path (``src/`` stripped)."""
        parts = self.path.replace("\\", "/").split("/")
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


class Rule:
    """Base class for one static check.

    Subclasses set the class attributes and implement :meth:`check`, which
    receives the parsed module, the raw source lines and the root-relative
    path, and returns findings.  ``scope`` is a tuple of path fragments
    (``"nn/"``, ``"text/similarity"``); empty means repo-wide.  Matching is
    segment-anchored so ``"nn/"`` does not match ``cnn/``.
    """

    rule_id: str = ""
    family: str = ""
    summary: str = ""
    rationale: str = ""
    scope: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if not self.scope:
            return True
        anchored = "/" + relpath.replace("\\", "/")
        return any(f"/{fragment}" in anchored for fragment in self.scope)

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List["Finding"]:
        raise NotImplementedError

    def finding(self, node: ast.AST, relpath: str, message: str) -> Finding:
        return Finding(
            path=relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


class ProgramRule(Rule):
    """A whole-program check: sees every parsed module in one call.

    Program rules run after the per-file sweep with the full module list;
    their findings carry ordinary (path, line) anchors and flow through the
    same suppression/baseline triage.  ``applies_to`` still scopes which
    files *contribute* to the program view for this rule (the engine passes
    every module; rules filter themselves if they care).
    """

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List["Finding"]:
        return []  # per-file entry point intentionally inert

    def check_program(self, modules: Sequence[ParsedModule]) -> List["Finding"]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the global registry (idempotent)."""
    if not cls.rule_id or not cls.family:
        raise ValueError(f"rule {cls.__name__} must define rule_id and family")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r} ({existing.__name__} vs {cls.__name__})")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _ensure_loaded() -> None:
    # Import the rule modules for their registration side effects.
    from repro.analysis import rules  # noqa: F401


def all_rules() -> List[Rule]:
    """One instance of every registered rule, sorted by (family, id)."""
    _ensure_loaded()
    return [
        _REGISTRY[rule_id]()
        for rule_id in sorted(_REGISTRY, key=lambda r: (_REGISTRY[r].family, r))
    ]


def rules_by_family() -> Dict[str, List[Rule]]:
    grouped: Dict[str, List[Rule]] = {}
    for rule in all_rules():
        grouped.setdefault(rule.family, []).append(rule)
    return grouped


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}; known: {sorted(_REGISTRY)}") from None
