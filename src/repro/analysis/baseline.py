"""Committed baseline of accepted findings.

The baseline lets the analyzer be adopted on a codebase with pre-existing
findings without blocking every change: known findings are recorded (path,
rule, line, message) in a reviewed JSON file and reported separately; only
*new* findings fail the lint guard.  ``repro lint --update-baseline``
rewrites the file after intentional churn — the diff shows exactly which
accepted findings appeared or went away.

Keys include the line number, so unrelated edits that shift a baselined
finding will surface it as "new" — that is intentional friction: touching
the surrounding code is the moment to fix or explicitly re-accept it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.registry import Finding

__all__ = ["load_baseline", "write_baseline", "partition_findings", "BASELINE_VERSION"]

BASELINE_VERSION = 1


def load_baseline(path: str) -> Set[str]:
    """The set of accepted finding keys; empty when the file is absent."""
    if not os.path.exists(path):
        return set()
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path!r} has version {payload.get('version')!r}; "
            f"expected {BASELINE_VERSION}"
        )
    return {
        f"{entry['path']}:{entry['rule']}:{entry['line']}"
        for entry in payload.get("findings", [])
    }


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries: List[Dict[str, object]] = [
        {"path": f.path, "rule": f.rule_id, "line": f.line, "message": f.message}
        for f in sorted(set(findings))
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    target = os.path.abspath(path)
    parent = os.path.dirname(target)
    os.makedirs(parent, exist_ok=True)
    tmp = target + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, target)
    return len(entries)


def partition_findings(
    findings: Iterable[Finding], accepted: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Split into (new, baselined) by baseline key membership."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        (baselined if finding.key in accepted else new).append(finding)
    return new, baselined
