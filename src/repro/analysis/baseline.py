"""Committed baseline of accepted findings.

The baseline lets the analyzer be adopted on a codebase with pre-existing
findings without blocking every change: known findings are recorded (path,
rule, line, message) in a reviewed JSON file and reported separately; only
*new* findings fail the lint guard.  ``repro lint --update-baseline``
rewrites the file after intentional churn — the diff shows exactly which
accepted findings appeared or went away.

Keys include the line number, so unrelated edits that shift a baselined
finding will surface it as "new" — that is intentional friction: touching
the surrounding code is the moment to fix or explicitly re-accept it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.registry import Finding

__all__ = [
    "load_baseline",
    "load_baseline_entries",
    "entry_key",
    "write_baseline",
    "write_baseline_entries",
    "partition_findings",
    "stale_keys",
    "BASELINE_VERSION",
]

BASELINE_VERSION = 1


def entry_key(entry: Dict[str, object]) -> str:
    """The finding key a baseline entry stands for."""
    return f"{entry['path']}:{entry['rule']}:{entry['line']}"


def load_baseline_entries(path: str) -> List[Dict[str, object]]:
    """The baseline's raw entries (for pruning); empty when absent."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path!r} has version {payload.get('version')!r}; "
            f"expected {BASELINE_VERSION}"
        )
    return list(payload.get("findings", []))


def load_baseline(path: str) -> Set[str]:
    """The set of accepted finding keys; empty when the file is absent."""
    return {entry_key(entry) for entry in load_baseline_entries(path)}


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries: List[Dict[str, object]] = [
        {"path": f.path, "rule": f.rule_id, "line": f.line, "message": f.message}
        for f in sorted(set(findings))
    ]
    return write_baseline_entries(path, entries)


def write_baseline_entries(path: str, entries: List[Dict[str, object]]) -> int:
    """Write raw entries (already finding-shaped dicts) as the baseline."""
    entries = sorted(entries, key=lambda e: (e["path"], e["rule"], e["line"]))
    payload = {"version": BASELINE_VERSION, "findings": entries}
    target = os.path.abspath(path)
    parent = os.path.dirname(target)
    os.makedirs(parent, exist_ok=True)
    tmp = target + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, target)
    return len(entries)


def partition_findings(
    findings: Iterable[Finding], accepted: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Split into (new, baselined) by baseline key membership."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        (baselined if finding.key in accepted else new).append(finding)
    return new, baselined


def stale_keys(
    accepted: Set[str],
    produced: Set[str],
    scanned_paths: Set[str],
    active_rules: Set[str],
) -> List[str]:
    """Baseline keys whose file was scanned but no finding matched.

    Keys for files *outside* the scanned set are left alone — a scoped run
    (``repro lint src/repro/nn``) must not declare the rest of the baseline
    stale — and so are keys for rules *outside* the active set, so a
    rule-scoped run (``repro locks``, which triages only the concurrency
    family) cannot declare every other family's entries stale.  Key format
    is ``path:rule:line`` (paths are posix-relative and never contain
    ``:``), so ``rsplit`` recovers both parts.
    """
    stale: List[str] = []
    for key in sorted(accepted - produced):
        path, rule, _ = key.rsplit(":", 2)
        if path in scanned_paths and rule in active_rules:
            stale.append(key)
    return stale
