"""Human and JSON reporters over an :class:`AnalysisResult`."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.engine import AnalysisResult
from repro.analysis.registry import Finding

__all__ = ["render_human", "render_json", "result_payload"]


def _group_by_path(findings: List[Finding]) -> Dict[str, List[Finding]]:
    grouped: Dict[str, List[Finding]] = {}
    for finding in findings:
        grouped.setdefault(finding.path, []).append(finding)
    return grouped


def render_human(result: AnalysisResult, verbose: bool = False) -> str:
    """Findings grouped by file, plus a one-line summary."""
    out: List[str] = []
    for path, findings in sorted(_group_by_path(result.new).items()):
        out.append(path)
        for finding in findings:
            out.append(
                f"  {finding.line}:{finding.col}  {finding.rule_id}  {finding.message}"
            )
    for report in result.errors:
        out.append(f"{report.path}: {report.error}")
    if result.stale_baseline:
        out.append("stale baseline entries (no longer produced; run --prune-baseline):")
        for key in result.stale_baseline:
            out.append(f"  {key}")
    if verbose and result.baselined:
        out.append("baselined findings:")
        for finding in sorted(result.baselined):
            out.append(
                f"  {finding.path}:{finding.line}  {finding.rule_id}  {finding.message}"
            )
    per_rule: Dict[str, int] = {}
    for finding in result.new:
        per_rule[finding.rule_id] = per_rule.get(finding.rule_id, 0) + 1
    if per_rule:
        out.append("")
        out.append(
            "new findings by rule: "
            + ", ".join(f"{rule}={count}" for rule, count in sorted(per_rule.items()))
        )
    out.append(
        f"{result.files_scanned} files, {result.rules_run} rules: "
        f"{len(result.new)} new, {len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed"
        + (f", {len(result.errors)} parse errors" if result.errors else "")
    )
    return "\n".join(out)


def _finding_dict(finding: Finding) -> Dict[str, object]:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule_id,
        "message": finding.message,
    }


def result_payload(result: AnalysisResult) -> Dict[str, object]:
    """The JSON-serialisable view consumed by the lint guard test."""
    return {
        "ok": result.ok,
        "summary": {
            "files_scanned": result.files_scanned,
            "rules_run": result.rules_run,
            "new": len(result.new),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "errors": len(result.errors),
            "stale_baseline": len(result.stale_baseline),
        },
        "stale_baseline": list(result.stale_baseline),
        "new": [_finding_dict(f) for f in result.new],
        "baselined": [_finding_dict(f) for f in result.baselined],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "errors": [
            {"path": report.path, "error": report.error} for report in result.errors
        ],
    }


def render_json(result: AnalysisResult) -> str:
    return json.dumps(result_payload(result), indent=2, sort_keys=True)
