"""The analysis engine: file discovery, per-file rule dispatch, triage.

One :func:`run_analysis` call walks the requested paths, parses each
``.py`` file once, lets every in-scope rule visit the tree, then triages
raw findings three ways:

* **suppressed** — an inline ``# repro: disable=<rule-id>`` covers the line;
* **baselined** — the finding's key is in the committed baseline;
* **new** — everything else; these fail the lint guard.

Paths inside findings are relative to ``root`` (posix separators) so the
baseline is stable regardless of where the analyzer is invoked from.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set

from repro.analysis.baseline import load_baseline, partition_findings
from repro.analysis.registry import Finding, Rule, all_rules
from repro.analysis.suppressions import SuppressionIndex

__all__ = ["AnalysisResult", "FileReport", "run_analysis", "iter_python_files", "analyze_source"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "node_modules"}


@dataclass
class FileReport:
    """Raw per-file output before baseline triage."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    error: Optional[str] = None


@dataclass
class AnalysisResult:
    """Triaged output of one analyzer run."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    errors: List[FileReport] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing new was found (parse errors still fail)."""
        return not self.new and not self.errors

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.new + self.baselined)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen: Set[str] = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            candidates = [path] if path.endswith(".py") else []
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
                candidates.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        for candidate in candidates:
            resolved = os.path.abspath(candidate)
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return iter(sorted(collected))


def _relpath(path: str, root: str) -> str:
    absolute = os.path.abspath(path)
    relative = os.path.relpath(absolute, root)
    if relative.startswith(".."):
        # Outside the root: keep the absolute path rather than a ../ chain
        # that would make baseline keys depend on the invocation directory.
        relative = absolute
    return relative.replace(os.sep, "/")


def analyze_source(
    source: str, relpath: str, rules: Optional[Sequence[Rule]] = None
) -> FileReport:
    """Run the rule set over one in-memory module (the unit-test entry)."""
    rules = list(rules) if rules is not None else all_rules()
    report = FileReport(path=relpath)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        report.error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return report
    lines = source.splitlines()
    suppressions = SuppressionIndex(lines)
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies_to(relpath):
            raw.extend(rule.check(tree, lines, relpath))
    for finding in sorted(raw):
        if suppressions.is_suppressed(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


def run_analysis(
    paths: Sequence[str],
    root: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline_path: Optional[str] = None,
) -> AnalysisResult:
    """Analyze ``paths`` and triage findings against the baseline."""
    root = os.path.abspath(root or os.getcwd())
    rules = list(rules) if rules is not None else all_rules()
    accepted = load_baseline(baseline_path) if baseline_path else set()
    result = AnalysisResult(rules_run=len(rules))
    collected: List[Finding] = []
    for path in iter_python_files(paths):
        relative = _relpath(path, root)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        report = analyze_source(source, relative, rules)
        result.files_scanned += 1
        if report.error is not None:
            result.errors.append(report)
            continue
        collected.extend(report.findings)
        result.suppressed.extend(report.suppressed)
    result.new, result.baselined = partition_findings(sorted(collected), accepted)
    return result
