"""The analysis engine: file discovery, rule dispatch, triage.

One :func:`run_analysis` call walks the requested paths, parses each
``.py`` file once into a :class:`~repro.analysis.registry.ParsedModule`,
lets every in-scope **per-file** rule visit its tree, then hands the whole
module list to every **program** rule (whole-program passes like the
concurrency analyzer).  Raw findings from both stages triage three ways:

* **suppressed** — an inline ``# repro: disable=<rule-id>`` covers the line;
* **baselined** — the finding's key is in the committed baseline;
* **new** — everything else; these fail the lint guard.

The run also audits the baseline itself: accepted keys whose file was
scanned but produced no matching finding are reported as **stale** so the
baseline cannot quietly rot as code moves (satellite of PR 9; the tier-1
guard asserts none exist).

Paths inside findings are relative to ``root`` (posix separators) so the
baseline is stable regardless of where the analyzer is invoked from.
"""

from __future__ import annotations

import ast
import os
import subprocess
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import load_baseline, partition_findings, stale_keys
from repro.analysis.registry import Finding, ParsedModule, ProgramRule, Rule, all_rules
from repro.analysis.suppressions import SuppressionIndex

__all__ = [
    "AnalysisResult",
    "FileReport",
    "run_analysis",
    "iter_python_files",
    "analyze_source",
    "changed_files",
]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "node_modules"}


@dataclass
class FileReport:
    """Raw per-file output before baseline triage."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    error: Optional[str] = None


@dataclass
class AnalysisResult:
    """Triaged output of one analyzer run."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    errors: List[FileReport] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing new was found (parse errors still fail).

        Stale baseline entries do not flip ``ok`` — they are a warning the
        guard surfaces separately, so a scoped run can't hard-fail on
        baseline keys it merely didn't look at.
        """
        return not self.new and not self.errors

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.new + self.baselined)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen: Set[str] = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            candidates = [path] if path.endswith(".py") else []
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
                candidates.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        for candidate in candidates:
            resolved = os.path.abspath(candidate)
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return iter(sorted(collected))


def changed_files(base: str = "HEAD", cwd: Optional[str] = None) -> Optional[List[str]]:
    """Python files changed vs ``base`` plus untracked ones, or ``None``.

    ``None`` (not an empty list) means "git unavailable / not a repo" —
    callers fall back to the full sweep.  An empty list is a real answer:
    nothing changed, nothing to lint.
    """
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    names: List[str] = []
    seen: Set[str] = set()
    for block in (diff.stdout, untracked.stdout):
        for name in block.splitlines():
            name = name.strip()
            if name.endswith(".py") and name not in seen:
                seen.add(name)
                names.append(name)
    return sorted(names)


def _relpath(path: str, root: str) -> str:
    absolute = os.path.abspath(path)
    relative = os.path.relpath(absolute, root)
    if relative.startswith(".."):
        # Outside the root: keep the absolute path rather than a ../ chain
        # that would make baseline keys depend on the invocation directory.
        relative = absolute
    return relative.replace(os.sep, "/")


def _split_rules(rules: Sequence[Rule]) -> Tuple[List[Rule], List[ProgramRule]]:
    per_file = [rule for rule in rules if not isinstance(rule, ProgramRule)]
    program = [rule for rule in rules if isinstance(rule, ProgramRule)]
    return per_file, program


def analyze_source(
    source: str, relpath: str, rules: Optional[Sequence[Rule]] = None
) -> FileReport:
    """Run the rule set over one in-memory module (the unit-test entry).

    Program rules in ``rules`` see a one-module program — exactly what the
    fixture corpus wants, since each fixture file is self-contained.
    """
    rules = list(rules) if rules is not None else all_rules()
    per_file, program = _split_rules(rules)
    report = FileReport(path=relpath)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        report.error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return report
    lines = source.splitlines()
    suppressions = SuppressionIndex(lines, tree=tree)
    module = ParsedModule(path=relpath, tree=tree, lines=lines)
    raw: List[Finding] = []
    for rule in per_file:
        if rule.applies_to(relpath):
            raw.extend(rule.check(tree, lines, relpath))
    for rule in program:
        raw.extend(rule.check_program([module]))
    for finding in sorted(raw):
        if suppressions.is_suppressed(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


def run_analysis(
    paths: Sequence[str],
    root: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline_path: Optional[str] = None,
) -> AnalysisResult:
    """Analyze ``paths`` and triage findings against the baseline."""
    root = os.path.abspath(root or os.getcwd())
    rules = list(rules) if rules is not None else all_rules()
    per_file, program = _split_rules(rules)
    accepted = load_baseline(baseline_path) if baseline_path else set()
    result = AnalysisResult(rules_run=len(rules))
    collected: List[Finding] = []
    modules: List[ParsedModule] = []
    suppressions: Dict[str, SuppressionIndex] = {}
    for path in iter_python_files(paths):
        relative = _relpath(path, root)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        result.files_scanned += 1
        try:
            tree = ast.parse(source, filename=relative)
        except SyntaxError as exc:
            result.errors.append(
                FileReport(
                    path=relative,
                    error=f"syntax error: {exc.msg} (line {exc.lineno})",
                )
            )
            continue
        lines = source.splitlines()
        index = suppressions[relative] = SuppressionIndex(lines, tree=tree)
        modules.append(ParsedModule(path=relative, tree=tree, lines=lines))
        for rule in per_file:
            if not rule.applies_to(relative):
                continue
            for finding in rule.check(tree, lines, relative):
                if index.is_suppressed(finding):
                    result.suppressed.append(finding)
                else:
                    collected.append(finding)
    for rule in program:
        for finding in rule.check_program(modules):
            index = suppressions.get(finding.path)
            if index is not None and index.is_suppressed(finding):
                result.suppressed.append(finding)
            else:
                collected.append(finding)
    result.new, result.baselined = partition_findings(sorted(collected), accepted)
    result.suppressed.sort()
    produced = {f.key for f in collected} | {f.key for f in result.suppressed}
    scanned = {module.path for module in modules}
    active = {rule.rule_id for rule in rules}
    result.stale_baseline = stale_keys(accepted, produced, scanned, active)
    return result
