"""Small ``ast`` helpers shared by the rule implementations.

These keep the rules themselves short: dotted-name resolution for call
targets (``np.random.default_rng`` → ``"np.random.default_rng"``), the
``self._attr`` store/read patterns the lock rules reason about, and a
"which lock attributes does this class own" scan.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

__all__ = [
    "dotted_name",
    "call_name",
    "has_keyword",
    "self_attr_target",
    "self_attr_reads",
    "owned_lock_attrs",
    "iter_methods",
    "MUTATOR_METHODS",
]

#: container methods that mutate their receiver in place — calling one of
#: these on a shared attribute is a write for lock-discipline purposes.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "add",
        "discard", "update", "setdefault", "popitem", "move_to_end",
        "appendleft", "popleft", "sort", "reverse", "fill",
    }
)

_LOCK_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        # repro.utils.locks factory names — lock-discipline rules must keep
        # recognising locks created through the witness-aware factories.
        "make_lock",
        "make_rlock",
        "TrackedLock",
        "TrackedRLock",
    }
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Attribute/Name chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.AST) -> Optional[str]:
    """The dotted name of a call's callee (accepts the Call or its func)."""
    if isinstance(node, ast.Call):
        node = node.func
    return dotted_name(node)


def has_keyword(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def self_attr_target(node: ast.AST) -> Optional[str]:
    """The attribute name when ``node`` stores into ``self.<attr>``.

    Covers plain stores (``self._x = ...``), subscript stores on the
    attribute (``self._x[k] = ...``) and attribute deletion targets.
    """
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return node.attr
        return None
    if isinstance(node, ast.Subscript):
        return self_attr_target(node.value)
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            found = self_attr_target(element)
            if found is not None:
                return found
    return None


def self_attr_reads(node: ast.AST) -> Set[str]:
    """Every ``self.<attr>`` loaded anywhere inside ``node``."""
    reads: Set[str] = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == "self"
            and isinstance(child.ctx, ast.Load)
        ):
            reads.add(child.attr)
    return reads


def owned_lock_attrs(class_node: ast.ClassDef) -> Set[str]:
    """Attribute names assigned a ``threading.Lock()``-like value in the class.

    Looks for ``self.X = threading.Lock()`` (or ``RLock``/bare imported
    ``Lock``) anywhere in the class body — usually ``__init__``.
    """
    locks: Set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign):
            continue
        callee = call_name(node.value)
        if callee is None or callee.split(".")[-1] not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = self_attr_target(target)
            if attr is not None:
                locks.add(attr)
    return locks


def iter_methods(class_node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for node in class_node.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
