"""Concurrency rule family: whole-program deadlock analysis + lock hygiene.

Two :class:`~repro.analysis.registry.ProgramRule`s wrap the lock pass in
:mod:`repro.analysis.concurrency` so its findings flow through the same
inline-suppression / baseline triage as every per-file rule, and one
ordinary rule keeps lock *creation* going through the named factories the
pass (and the runtime witness) depend on.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from repro.analysis.astutil import call_name
from repro.analysis.concurrency.locksets import LockReport, analyze_program
from repro.analysis.registry import Finding, ParsedModule, ProgramRule, Rule, register

__all__ = ["LockOrderCycle", "LockHeldBlocking", "LockFactory"]

#: One-slot memo so both program rules share a single analysis of the same
#: module list (the engine hands each rule the identical sequence).
_MEMO: List[Tuple[Tuple[Tuple[str, int], ...], LockReport]] = []


def _program_report(modules: Sequence[ParsedModule]) -> LockReport:
    key = tuple((module.path, id(module.tree)) for module in modules)
    if _MEMO and _MEMO[0][0] == key:
        return _MEMO[0][1]
    report = analyze_program(modules)
    _MEMO[:] = [(key, report)]
    return report


@register
class LockOrderCycle(ProgramRule):
    rule_id = "lock-order-cycle"
    family = "concurrency"
    summary = "cycle in the whole-program lock-order graph (potential deadlock)"
    rationale = (
        "Two code paths acquire the same locks in opposite orders; under "
        "concurrency each can hold one lock and wait forever on the "
        "other's.  Fix by making every path follow the canonical "
        "hierarchy (repro locks prints it), or restructure so one path "
        "never holds both."
    )

    def check_program(self, modules: Sequence[ParsedModule]) -> List[Finding]:
        report = _program_report(modules)
        findings: List[Finding] = []
        for cycle in report.cycles:
            path, line = cycle.anchor
            chain = " -> ".join(cycle.names + (cycle.names[0],))
            sites = "; ".join(
                f"{edge.src}->{edge.dst} at {edge.dst_site[0]}:{edge.dst_site[1]}"
                for edge in cycle.edges[:4]
            )
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=0,
                    rule_id=self.rule_id,
                    message=f"lock-order cycle {chain} ({sites})",
                )
            )
        return findings


@register
class LockHeldBlocking(ProgramRule):
    rule_id = "lock-held-blocking"
    family = "concurrency"
    summary = "lock held across a known-blocking call"
    rationale = (
        "A queue wait, socket send or whole-corpus rebuild under a lock "
        "stalls every thread that needs the lock for as long as the call "
        "blocks — the serving-availability failure the double-buffered "
        "background rebuild exists to prevent.  Move the blocking work "
        "outside the critical section or bound it with a timeout."
    )

    def check_program(self, modules: Sequence[ParsedModule]) -> List[Finding]:
        report = _program_report(modules)
        findings: List[Finding] = []
        for site in report.blocking:
            held = ", ".join(
                f"{name} (held since {where[0]}:{where[1]})" for name, where in site.held
            )
            findings.append(
                Finding(
                    path=site.path,
                    line=site.line,
                    col=0,
                    rule_id=self.rule_id,
                    message=f"{site.desc} may block while holding {held}",
                )
            )
        return findings


@register
class LockFactory(Rule):
    rule_id = "lock-factory"
    family = "concurrency"
    summary = "raw threading lock; create via repro.utils.locks factories"
    rationale = (
        "Locks created through make_lock()/make_rlock() carry a stable "
        "order name, which is what makes both the static lock-order graph "
        "and the REPRO_LOCK_WITNESS runtime witness able to identify them. "
        "A raw threading.Lock() is invisible to both."
    )

    _FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})
    #: library code only — tests and fixtures may build raw locks freely.
    scope = ("src/",)
    #: the factory module itself wraps the raw primitives — that is its job.
    _EXEMPT_SUFFIXES = ("utils/locks.py",)

    def applies_to(self, relpath: str) -> bool:
        anchored = relpath.replace("\\", "/")
        if any(anchored.endswith(suffix) for suffix in self._EXEMPT_SUFFIXES):
            return False
        return super().applies_to(relpath)

    @staticmethod
    def _is_threading_primitive(call: ast.Call) -> Optional[str]:
        name = call_name(call)
        if name is None:
            return None
        parts = name.split(".")
        if parts[-1] not in LockFactory._FACTORIES:
            return None
        # Require the threading module (or a bare imported name) so e.g.
        # multiprocessing.Lock() in unrelated code does not false-positive.
        if len(parts) == 1 or parts[0] == "threading":
            return name
        return None

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._is_threading_primitive(node)
            if name is not None:
                findings.append(
                    self.finding(
                        node,
                        relpath,
                        f"{name}() bypasses repro.utils.locks (unnamed in the "
                        "lock-order graph and invisible to the witness)",
                    )
                )
        return findings
