"""Tape-free inference purity rule.

``repro/nn/infer.py`` is the dedicated inference-only forward: its whole
contract is that nothing in it ever touches the autograd tape.  Wrapping an
array in ``Tensor``/``Parameter`` (or asking for ``requires_grad=True``
anywhere) silently reintroduces graph-node allocation, eager local-gradient
computation and float64 coercion — exactly the costs the module exists to
shed, and a regression the benchmarks would only catch as a slowdown.  This
rule catches it as a lint finding instead.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from repro.analysis.astutil import call_name
from repro.analysis.registry import Finding, Rule, register

__all__ = ["TapeFreeInference"]

#: autograd entry points that must never appear in the inference module.
_TAPE_CONSTRUCTORS = frozenset({"Tensor", "Parameter"})


@register
class TapeFreeInference(Rule):
    rule_id = "tape-free-inference"
    family = "numpy-kernel"
    summary = "autograd tape construct inside the inference-only module"
    rationale = (
        "repro/nn/infer.py promises a forward that never builds the tape; "
        "constructing Tensor/Parameter or passing requires_grad=True there "
        "reintroduces graph nodes, eager derivative computation and float64 "
        "coercion on the hot path the encode-speedup floor guards."
    )
    scope = ("nn/infer",)

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                callee = call_name(node)
                if callee is not None and callee.split(".")[-1] in _TAPE_CONSTRUCTORS:
                    findings.append(
                        self.finding(
                            node,
                            relpath,
                            f"{callee}(...) constructs an autograd tape node "
                            "in the tape-free inference module",
                        )
                    )
                    continue
            # requires_grad=True as a call keyword or a plain attribute
            # assignment both re-enable the tape.
            if isinstance(node, ast.keyword) and node.arg == "requires_grad":
                if isinstance(node.value, ast.Constant) and node.value.value is True:
                    findings.append(
                        self.finding(
                            node.value,
                            relpath,
                            "requires_grad=True inside the tape-free inference module",
                        )
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "requires_grad"
                        and isinstance(value, ast.Constant)
                        and value.value is True
                    ):
                        findings.append(
                            self.finding(
                                node,
                                relpath,
                                "requires_grad flipped on inside the tape-free "
                                "inference module",
                            )
                        )
        return findings
