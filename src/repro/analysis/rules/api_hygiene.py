"""API-hygiene rules.

General correctness hazards that have each bitten this codebase (or nearly
did): bare ``except:`` swallowing ``KeyboardInterrupt``/``SystemExit`` in
long-running servers, mutable default arguments shared across calls, and
mode flips (``.eval()`` / ``.train()`` / ``self.training = ...``) whose
restore is not protected by ``try/finally`` — the exact bug class fixed by
hand in ``SequenceTagger.predict``.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.registry import Finding, Rule, register

__all__ = ["BareExcept", "MutableDefault", "ModeFlipNoRestore", "NoPrintInSrc"]

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "OrderedDict", "defaultdict", "deque"})


@register
class BareExcept(Rule):
    rule_id = "bare-except"
    family = "api-hygiene"
    summary = "bare except: catches SystemExit and KeyboardInterrupt"
    rationale = (
        "`except:` (and `except BaseException:` without re-raise intent) "
        "traps interpreter shutdown signals; serving loops become "
        "unkillable.  Catch Exception or something narrower."
    )

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                findings.append(self.finding(node, relpath, "bare except: clause"))
        return findings


@register
class MutableDefault(Rule):
    rule_id = "mutable-default"
    family = "api-hygiene"
    summary = "mutable default argument shared across calls"
    rationale = (
        "A list/dict/set default is evaluated once at def time; every call "
        "mutating it leaks state across requests.  Default to None and "
        "allocate inside the function."
    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name is not None and name.split(".")[-1] in _MUTABLE_FACTORIES
        return False

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    findings.append(
                        self.finding(
                            default, relpath, f"mutable default argument in {label}()"
                        )
                    )
        return findings


def _mode_flip(node: ast.AST) -> Optional[Tuple[str, str]]:
    """(receiver, description) when ``node`` flips a train/eval mode.

    Matches ``X.eval()``, ``X.train(...)`` and ``X.training = <expr>``.
    """
    if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
        callee = dotted_name(node.value.func)
        if callee is not None:
            parts = callee.split(".")
            if len(parts) >= 2 and parts[-1] in ("eval", "train"):
                return ".".join(parts[:-1]), f"{callee}()"
    if isinstance(node, ast.Assign):
        for target in node.targets:
            name = dotted_name(target)
            if name is not None and name.endswith(".training"):
                return name.rsplit(".", 1)[0], f"{name} = ..."
    return None


@register
class ModeFlipNoRestore(Rule):
    rule_id = "mode-flip-no-restore"
    family = "api-hygiene"
    summary = "train/eval mode flipped and restored without try/finally"
    rationale = (
        "If the work between `model.eval()` and the restoring `model.train()` "
        "raises, the model is silently stuck in the wrong mode (dropout off "
        "for the rest of training).  The restore must live in a finally:."
    )

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # Flips at the function's statement level (not inside try/finally).
            top_flips: List[Tuple[ast.AST, str, str]] = []
            for statement in node.body:
                flip = _mode_flip(statement)
                if flip is not None:
                    top_flips.append((statement, flip[0], flip[1]))
            if len(top_flips) < 2:
                continue
            # Same receiver flipped twice outside any finally → first flip's
            # restore is not exception-safe.
            seen = {}
            for statement, receiver, description in top_flips:
                if receiver in seen:
                    findings.append(
                        self.finding(
                            seen[receiver][0],
                            relpath,
                            f"{seen[receiver][1]} restored by {description} "
                            "without try/finally",
                        )
                    )
                    break
                seen[receiver] = (statement, description)
        return findings


@register
class NoPrintInSrc(Rule):
    rule_id = "no-print-in-src"
    family = "api-hygiene"
    summary = "print() in library code instead of the structured logger"
    rationale = (
        "Library and server modules must not write free-form lines to "
        "stdout: output belongs in repro.obs.log, where every record is "
        "one JSON object stamped with the active trace/span ids.  CLI "
        "entry points, the lint reporters and the logger's own emitter "
        "are the sanctioned exceptions."
    )

    #: path suffixes where print() is the interface, not a leak.
    _EXEMPT_SUFFIXES = ("cli.py", "analysis/reporters.py", "obs/log.py")

    def applies_to(self, relpath: str) -> bool:
        anchored = relpath.replace("\\", "/")
        return not any(anchored.endswith(suffix) for suffix in self._EXEMPT_SUFFIXES)

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                findings.append(
                    self.finding(
                        node, relpath, "print() bypasses the structured logger"
                    )
                )
        return findings
