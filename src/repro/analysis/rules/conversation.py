"""Conversation-stage determinism rule.

The conversation stage (``repro/conversation/``) promises that a transcript
fully determines every routing, coreference and rewrite decision — the
equivalence oracle in the bench and the serve-vs-sequential session tests
both rely on it.  Unlike the ranking modules (where only scoring paths are
clock-sensitive), *nothing* in the conversation package may read the
wall clock or draw from process-global RNG state: salience recency is
turn-indexed, not time-indexed, and any randomness must arrive as an
explicitly seeded generator.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from repro.analysis.astutil import call_name
from repro.analysis.registry import Finding, Rule, register
from repro.analysis.rules.determinism import (
    _GLOBAL_RANDOM_FNS,
    _NP_RANDOM_ALLOWED,
    _WALLCLOCK_CALLS,
)

__all__ = ["ConversationDeterminism"]


@register
class ConversationDeterminism(Rule):
    rule_id = "conversation-determinism"
    family = "determinism"
    summary = "wall-clock or global-RNG use inside the conversation stage"
    rationale = (
        "repro.conversation guarantees transcript-determinism: routing, "
        "coreference and topic-shift decisions must be pure functions of "
        "the utterance sequence.  Clock reads or global RNG draws break the "
        "stage-on/stage-off equivalence oracle; inject a clock or pass a "
        "seeded np.random.Generator instead."
    )
    scope = ("conversation/",)

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node.func)
            if callee is None:
                continue
            if callee in _WALLCLOCK_CALLS:
                findings.append(
                    self.finding(
                        node,
                        relpath,
                        f"{callee}() reads the wall clock inside the conversation stage",
                    )
                )
                continue
            parts = callee.split(".")
            if parts[0] == "random" and len(parts) == 2 and parts[1] in _GLOBAL_RANDOM_FNS:
                findings.append(
                    self.finding(
                        node,
                        relpath,
                        f"{callee}() draws global RNG inside the conversation stage",
                    )
                )
            elif (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _NP_RANDOM_ALLOWED
            ):
                findings.append(
                    self.finding(
                        node,
                        relpath,
                        f"{callee}() draws numpy global RNG inside the conversation stage",
                    )
                )
        return findings
