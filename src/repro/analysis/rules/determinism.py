"""Determinism rules.

Rankings in a subjective search engine are only auditable if they are
reproducible: the same corpus, index generation and query must produce the
same bytes.  These rules ban the usual entropy leaks — process-global RNG
state, wall-clock reads inside scoring, set-iteration order feeding ordered
output, and unstable sorts in tie-breaking paths.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from repro.analysis.astutil import call_name
from repro.analysis.registry import Finding, Rule, register

__all__ = ["GlobalRng", "WallclockInRanking", "SetIterationOrder", "UnstableArgsort"]

#: modules whose outputs are ranked / scored — wall-clock reads here leak
#: entropy straight into degree-of-truth scores.
RANKING_MODULES = (
    "core/filtering",
    "core/index",
    "core/saccs",
    "core/session",
    "ir/",
    "text/similarity",
)

#: modules where argsort order breaks ties between equal scores.
TIE_BREAK_MODULES = ("core/", "ir/", "nn/crf", "text/similarity")

_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "seed", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "gauss", "normalvariate",
        "getrandbits", "betavariate", "expovariate", "triangular",
    }
)
_NP_RANDOM_ALLOWED = frozenset(
    {"default_rng", "Generator", "RandomState", "SeedSequence", "BitGenerator", "PCG64"}
)
_WALLCLOCK_CALLS = frozenset(
    {"time.time", "time.monotonic", "time.perf_counter", "time.time_ns",
     "datetime.now", "datetime.utcnow", "datetime.datetime.now",
     "datetime.datetime.utcnow", "date.today", "datetime.date.today"}
)
_STABLE_KINDS = frozenset({"stable", "mergesort"})


@register
class GlobalRng(Rule):
    rule_id = "global-rng"
    family = "determinism"
    summary = "call mutates or draws from process-global RNG state"
    rationale = (
        "Module-level random.*/np.random.* share hidden global state across "
        "threads and call sites; one stray draw desynchronises every seeded "
        "run.  Pass an explicit random.Random / np.random.Generator instead."
    )

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node.func)
            if callee is None:
                continue
            parts = callee.split(".")
            if parts[0] == "random" and len(parts) == 2 and parts[1] in _GLOBAL_RANDOM_FNS:
                findings.append(
                    self.finding(node, relpath, f"{callee}() draws from the global RNG")
                )
            elif (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _NP_RANDOM_ALLOWED
            ):
                findings.append(
                    self.finding(
                        node, relpath, f"{callee}() uses numpy's global RNG state"
                    )
                )
        return findings


@register
class WallclockInRanking(Rule):
    rule_id = "wallclock-in-ranking"
    family = "determinism"
    summary = "wall-clock read inside a scoring/ranking module"
    rationale = (
        "Scores must be a pure function of corpus + query + generation; a "
        "clock read in a ranking module makes results irreproducible.  Time "
        "belongs in the serving/metrics layer, injected as a `clock=` dep."
    )
    scope = RANKING_MODULES

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and call_name(node.func) in _WALLCLOCK_CALLS:
                findings.append(
                    self.finding(
                        node,
                        relpath,
                        f"{call_name(node.func)}() read inside a ranking module",
                    )
                )
        return findings


@register
class SetIterationOrder(Rule):
    rule_id = "set-iteration-order"
    family = "determinism"
    summary = "iteration over a fresh set feeds order-sensitive output"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomisation; `for x in set(...)` or list(set(...)) silently "
        "reorders downstream output.  Wrap in sorted(...) to fix the order."
    )

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if call_name(iterable) in ("set", "frozenset"):
                    findings.append(
                        self.finding(
                            iterable,
                            relpath,
                            "iterating a set() in nondeterministic order",
                        )
                    )
            elif isinstance(node, ast.Call) and call_name(node.func) in ("list", "tuple"):
                if node.args and call_name(node.args[0]) in ("set", "frozenset"):
                    findings.append(
                        self.finding(
                            node,
                            relpath,
                            f"{call_name(node.func)}(set(...)) materialises "
                            "nondeterministic order",
                        )
                    )
        return findings


@register
class UnstableArgsort(Rule):
    rule_id = "unstable-argsort"
    family = "determinism"
    summary = "argsort without kind='stable' in a tie-breaking path"
    rationale = (
        "np.argsort defaults to an unstable introsort: equal scores land in "
        "arbitrary order, so tied entities can swap ranks between runs.  "
        "Tie-breaking paths must pass kind='stable' (or justify why ties "
        "cannot reach the output) to keep rankings byte-reproducible."
    )
    scope = TIE_BREAK_MODULES

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node.func)
            is_np = callee in ("np.argsort", "numpy.argsort")
            is_method = (
                isinstance(node.func, ast.Attribute) and node.func.attr == "argsort"
            )
            if not (is_np or is_method):
                continue
            kind = next((kw.value for kw in node.keywords if kw.arg == "kind"), None)
            if kind is None:
                findings.append(
                    self.finding(node, relpath, "argsort without kind='stable'")
                )
            elif not (
                isinstance(kind, ast.Constant) and kind.value in _STABLE_KINDS
            ):
                findings.append(
                    self.finding(node, relpath, "argsort with an unstable kind")
                )
        return findings
