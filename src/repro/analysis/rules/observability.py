"""Metric-name hygiene rule.

Metric names are a *schema*, not data: dashboards, the SLO specs and the
``repro top`` tables all address series by name, and the registry keeps
every name it has ever seen.  A dynamically built name
(``metrics.incr(f"user.{user_id}")``) therefore does two bad things at
once — it grows registry memory without bound under adversarial input,
and it produces series no dashboard knows to look for.  The rule forces
every ``incr``/``observe``/``time`` call on a metrics registry to receive
either a string literal or a reference through a module-level constant
(``UPPER_CASE`` name, attribute or constant-map subscript like
``ROUTE_COUNTERS[route]``), so the full metric vocabulary is enumerable
from the source.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence

from repro.analysis.astutil import call_name
from repro.analysis.registry import Finding, Rule, register

__all__ = ["MetricNameLiteral"]

#: recording methods on the registry whose first argument names a series.
_RECORDERS = frozenset({"incr", "observe", "time"})

#: receiver spellings that identify a metrics registry at a call site.
_RECEIVERS = frozenset({"metrics", "_metrics", "registry"})


def _is_constant_ref(node: ast.AST) -> bool:
    """A read of a module-level constant by naming convention.

    Accepts ``CONSTANT``, ``module.CONSTANT`` and constant-map lookups
    (``CONSTANT[...]``) — the closed-set patterns that keep the metric
    vocabulary enumerable even when the exact series is picked at runtime.
    """
    if isinstance(node, ast.Name):
        return node.id.isupper()
    if isinstance(node, ast.Attribute):
        return node.attr.isupper()
    if isinstance(node, ast.Subscript):
        return _is_constant_ref(node.value)
    return False


def _metric_name_arg(call: ast.Call) -> Optional[ast.AST]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


@register
class MetricNameLiteral(Rule):
    rule_id = "metric-name-literal"
    family = "observability"
    summary = "dynamically built metric name at a registry call site"
    rationale = (
        "metrics.incr/observe/time must receive a string literal or a "
        "module-level constant: names built from runtime values create "
        "unbounded metric cardinality (registry memory grows with input) "
        "and series that no dashboard, SLO spec or bench guard addresses.  "
        "Enumerate the closed set in an UPPER_CASE constant and index it."
    )

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node.func)
            if callee is None:
                continue
            parts = callee.split(".")
            if len(parts) < 2 or parts[-1] not in _RECORDERS:
                continue
            if parts[-2] not in _RECEIVERS:
                continue
            arg = _metric_name_arg(node)
            if arg is None:
                continue  # zero-arg call: not this registry's signature
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                continue
            if _is_constant_ref(arg):
                continue
            shape = type(arg).__name__
            findings.append(
                self.finding(
                    node,
                    relpath,
                    f"{callee}() metric name is a {shape}, not a string "
                    "literal or module-level constant — unbounded metric "
                    "cardinality",
                )
            )
        return findings
