"""Numpy-kernel hygiene rules.

The vectorized kernels (similarity matmuls, batch Viterbi) are oracle-
checked byte-for-byte against scalar implementations, which makes three
numpy habits dangerous: ``np.empty`` buffers that are never fully written
(uninitialised memory reaches the comparison), ``==``/``!=`` between float
arrays (bitwise equality is not numeric equality after reassociation), and
dtype left to inference (int32/int64 or float32/float64 drift between
platforms changes accumulation order and overflow behaviour).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Set

from repro.analysis.astutil import call_name, has_keyword
from repro.analysis.registry import Finding, Rule, register

__all__ = ["EmptyNoFill", "FloatArrayCompare", "ImplicitDtype"]

#: modules holding the oracle-checked numeric kernels.
KERNEL_MODULES = ("nn/", "text/similarity")

#: numpy constructors whose dtype must be spelled out inside kernels.
_DTYPE_REQUIRED = frozenset(
    {"array", "zeros", "ones", "empty", "full", "asarray", "arange", "eye"}
)

#: numpy calls whose result is a float array — comparing them with ==
#: instead of np.isclose/allclose is almost always a bug.
_FLOAT_PRODUCERS = frozenset(
    {
        "dot", "matmul", "exp", "log", "log1p", "expm1", "sqrt", "tanh",
        "sin", "cos", "mean", "std", "var", "divide", "true_divide",
        "softmax", "logsumexp", "linalg.norm", "einsum",
    }
)


def _np_call_suffix(node: ast.AST) -> str:
    """``"zeros"`` for ``np.zeros(...)`` / ``numpy.zeros(...)``, else ``""``."""
    callee = call_name(node) if isinstance(node, ast.Call) else None
    if callee is None:
        return ""
    parts = callee.split(".")
    if parts[0] in ("np", "numpy") and len(parts) >= 2:
        return ".".join(parts[1:])
    return ""


class _FunctionScan(ast.NodeVisitor):
    """Per-function facts: np.empty buffers and names bound to float arrays."""

    def __init__(self):
        self.empty_buffers: Dict[str, ast.Call] = {}
        self.filled: Set[str] = set()
        self.float_names: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        suffix = _np_call_suffix(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if suffix == "empty":
                    self.empty_buffers[target.id] = node.value
                elif suffix in _FLOAT_PRODUCERS:
                    self.float_names.add(target.id)
            elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                self.filled.add(target.value.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            self.filled.add(target.value.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # buffer.fill(x) and np.copyto(buffer, ...) / out=buffer count as writes.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "fill":
            if isinstance(node.func.value, ast.Name):
                self.filled.add(node.func.value.id)
        for keyword in node.keywords:
            if keyword.arg == "out" and isinstance(keyword.value, ast.Name):
                self.filled.add(keyword.value.id)
        if _np_call_suffix(node) == "copyto" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name):
                self.filled.add(first.id)
        self.generic_visit(node)


def _functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class EmptyNoFill(Rule):
    rule_id = "empty-no-fill"
    family = "numpy-kernel"
    summary = "np.empty buffer with no subsequent write in the same function"
    rationale = (
        "np.empty returns uninitialised memory; if no element store, .fill "
        "or out= write follows in the same function, garbage bytes flow "
        "into oracle comparisons and flake nondeterministically."
    )

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for function in _functions(tree):
            scan = _FunctionScan()
            for statement in function.body:
                scan.visit(statement)
            for name, call in scan.empty_buffers.items():
                if name not in scan.filled:
                    findings.append(
                        self.finding(
                            call,
                            relpath,
                            f"np.empty buffer {name!r} is never written in "
                            f"{function.name}()",
                        )
                    )
        return findings


@register
class FloatArrayCompare(Rule):
    rule_id = "float-array-compare"
    family = "numpy-kernel"
    summary = "== / != between float array expressions"
    rationale = (
        "Vectorized kernels reassociate float ops, so bitwise equality "
        "against another float result is exactly the comparison the oracle "
        "tests forbid; use np.isclose/np.allclose with explicit tolerances."
    )
    scope = KERNEL_MODULES

    def _is_float_expr(self, node: ast.AST, float_names: Set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in float_names
        return _np_call_suffix(node) in _FLOAT_PRODUCERS

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for function in _functions(tree):
            scan = _FunctionScan()
            for statement in function.body:
                scan.visit(statement)
            for node in ast.walk(function):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                    continue
                operands = [node.left] + list(node.comparators)
                if any(self._is_float_expr(op, scan.float_names) for op in operands):
                    findings.append(
                        self.finding(
                            node,
                            relpath,
                            "float arrays compared with ==/!=; use np.isclose",
                        )
                    )
        return findings


@register
class ImplicitDtype(Rule):
    rule_id = "implicit-dtype"
    family = "numpy-kernel"
    summary = "numpy constructor without an explicit dtype in a kernel module"
    rationale = (
        "Inferred dtypes drift (platform int widths, int-vs-float promotion "
        "from input data) and change accumulation/overflow behaviour; the "
        "oracle-checked kernels spell dtype= so equivalence is portable."
    )
    scope = KERNEL_MODULES

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            suffix = _np_call_suffix(node)
            if suffix in _DTYPE_REQUIRED and not has_keyword(node, "dtype"):
                findings.append(
                    self.finding(node, relpath, f"np.{suffix}(...) without dtype=")
                )
        return findings
