"""Rule families — importing this package registers every rule.

Four families, each encoding an invariant the oracle-equivalence story
depends on: lock discipline (shared state under its lock), determinism
(no entropy in ranking paths), numpy-kernel hygiene (portable, fully
initialised numerics) and API hygiene (exception- and call-safety).
"""

from repro.analysis.rules import (
    api_hygiene,
    conversation,
    determinism,
    inference,
    locks,
    numpy_kernels,
)

__all__ = [
    "api_hygiene",
    "conversation",
    "determinism",
    "inference",
    "locks",
    "numpy_kernels",
]
