"""Rule families — importing this package registers every rule.

Seven families, each encoding an invariant the oracle-equivalence story
depends on: lock discipline (shared state under its lock), whole-program
concurrency (deadlock-free lock ordering, no blocking under a lock),
determinism (no entropy in ranking paths), numpy-kernel hygiene (portable,
fully initialised numerics), API hygiene (exception- and call-safety),
persistence (durable writes are atomic) and observability (enumerable,
bounded metric vocabulary).
"""

from repro.analysis.rules import (
    api_hygiene,
    concurrency,
    conversation,
    determinism,
    inference,
    locks,
    numpy_kernels,
    observability,
    persistence,
)

__all__ = [
    "api_hygiene",
    "concurrency",
    "conversation",
    "determinism",
    "inference",
    "locks",
    "numpy_kernels",
    "observability",
    "persistence",
]
