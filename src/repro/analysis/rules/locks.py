"""Lock-discipline rules.

The serving stack's equivalence guarantee (batched == sequential oracle)
assumes shared mutable state is only touched under its owning lock.  These
rules encode the repo conventions:

* a class that owns a ``threading.Lock``/``RLock`` must mutate its private
  (``self._*``) attributes inside ``with <lock>:`` — except in ``__init__``
  (the object is not yet shared) and in ``*_locked`` helpers (called with
  the lock already held, per the naming convention in ``SessionStore``);
* worker/batcher threads must be daemonic so a crashed caller cannot leave
  the process wedged on join;
* check-then-act sequences on shared flags (``if self._running: ...`` then
  ``self._running = x``) must happen atomically under the lock.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.astutil import (
    MUTATOR_METHODS,
    call_name,
    has_keyword,
    iter_methods,
    owned_lock_attrs,
    self_attr_target,
)
from repro.analysis.registry import Finding, Rule, register

__all__ = ["UnguardedAttrWrite", "ThreadNoDaemon", "CheckThenAct"]

_EXEMPT_METHODS = {"__init__", "__new__", "__del__", "__post_init__"}


def _is_lock_guard(item: ast.withitem, lock_attrs: Set[str]) -> bool:
    """True when the with-item acquires one of the class's own locks."""
    expr = item.context_expr
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in lock_attrs
    ):
        return True
    # self._lock.acquire()-style guards inside `with` are equivalent.
    callee = call_name(expr)
    if callee is not None:
        parts = callee.split(".")
        return len(parts) >= 2 and parts[0] == "self" and parts[1] in lock_attrs
    return False


class _GuardTracker(ast.NodeVisitor):
    """Walk one method body tracking whether an owned lock is held.

    Nested functions are skipped entirely: closures handed to threads or
    executors have their own call-time context the static pass cannot see.
    """

    def __init__(self, lock_attrs: Set[str]):
        self.lock_attrs = lock_attrs
        self.depth = 0
        #: (node, attr, guarded) for every self._attr write observed.
        self.writes: List[Tuple[ast.AST, str, bool]] = []
        #: attr -> was any read of it guarded / unguarded (for check-then-act).
        self.reads: List[Tuple[ast.AST, str, bool]] = []
        #: Attribute nodes already consumed as mutator-call receivers —
        #: `self._x.append(...)` is one write, not a read-then-write pair.
        self._mutator_receivers: Set[int] = set()

    # -- guard scope ------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        guards = sum(1 for item in node.items if _is_lock_guard(item, self.lock_attrs))
        self.depth += guards
        for child in node.body:
            self.visit(child)
        self.depth -= guards

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # nested defs
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    # -- writes -----------------------------------------------------------

    def _record_target(self, node: ast.AST, target: ast.AST) -> None:
        attr = self_attr_target(target)
        if attr is not None and attr.startswith("_") and attr not in self.lock_attrs:
            self.writes.append((node, attr, self.depth > 0))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(node, target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node, node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node, node.target)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(node, target)

    def visit_Call(self, node: ast.Call) -> None:
        callee = call_name(node.func)
        if callee is not None:
            parts = callee.split(".")
            if (
                len(parts) == 3
                and parts[0] == "self"
                and parts[1].startswith("_")
                and parts[1] not in self.lock_attrs
                and parts[2] in MUTATOR_METHODS
            ):
                self.writes.append((node, parts[1], self.depth > 0))
                if isinstance(node.func, ast.Attribute):
                    self._mutator_receivers.add(id(node.func.value))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
            and node.attr.startswith("_")
            and node.attr not in self.lock_attrs
            and id(node) not in self._mutator_receivers
        ):
            self.reads.append((node, node.attr, self.depth > 0))
        self.generic_visit(node)


def _lock_owning_classes(tree: ast.Module) -> List[Tuple[ast.ClassDef, Set[str]]]:
    owners = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            locks = owned_lock_attrs(node)
            if locks:
                owners.append((node, locks))
    return owners


@register
class UnguardedAttrWrite(Rule):
    rule_id = "unguarded-attr-write"
    family = "lock-discipline"
    summary = "private attribute mutated outside the owning class's lock"
    rationale = (
        "A class that allocates a threading lock has declared its state "
        "shared; writing self._* outside `with <lock>:` races readers and "
        "breaks the batched==sequential equivalence the locks exist to keep."
    )

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for class_node, locks in _lock_owning_classes(tree):
            for method in iter_methods(class_node):
                if method.name in _EXEMPT_METHODS or method.name.endswith("_locked"):
                    continue
                tracker = _GuardTracker(locks)
                for statement in method.body:
                    tracker.visit(statement)
                for node, attr, guarded in tracker.writes:
                    if not guarded:
                        findings.append(
                            self.finding(
                                node,
                                relpath,
                                f"{class_node.name}.{method.name} writes self.{attr} "
                                f"outside `with self.{sorted(locks)[0]}:`",
                            )
                        )
        return findings


@register
class ThreadNoDaemon(Rule):
    rule_id = "thread-no-daemon"
    family = "lock-discipline"
    summary = "threading.Thread constructed without an explicit daemon flag"
    rationale = (
        "Non-daemon service threads keep the interpreter alive after a "
        "crash; every Thread in this repo must state daemon= explicitly."
    )

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node.func)
            if callee in ("threading.Thread", "Thread") and not has_keyword(node, "daemon"):
                findings.append(
                    self.finding(node, relpath, "threading.Thread(...) without daemon=")
                )
        return findings


@register
class CheckThenAct(Rule):
    rule_id = "check-then-act"
    family = "lock-discipline"
    summary = "unguarded test-and-set on a shared flag"
    rationale = (
        "Reading a shared flag and then writing it outside the lock lets "
        "two threads interleave between test and act (double start, double "
        "stop, generation skew); the pair must sit in one `with <lock>:`."
    )

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        for class_node, locks in _lock_owning_classes(tree):
            for method in iter_methods(class_node):
                if method.name in _EXEMPT_METHODS or method.name.endswith("_locked"):
                    continue
                tracker = _GuardTracker(locks)
                for statement in method.body:
                    tracker.visit(statement)
                written: Dict[str, bool] = {}
                for _, attr, guarded in tracker.writes:
                    written[attr] = written.get(attr, False) or not guarded
                for node, attr, guarded in tracker.reads:
                    if not guarded and written.get(attr):
                        findings.append(
                            self.finding(
                                node,
                                relpath,
                                f"{class_node.name}.{method.name} tests and sets "
                                f"self.{attr} without holding the lock",
                            )
                        )
                        break  # one report per method is enough
        return findings
