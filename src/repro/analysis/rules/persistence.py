"""Persistence rules.

Snapshots, bench records and baselines are read back by later runs — by the
serving warm-start path, the tier-1 bench guard, CI.  A writer that dies
mid-``write()`` (or races a reader) must never leave a torn file where a
valid one stood, so every durable write goes through the temp-file +
``os.replace`` idiom: write the full payload to a sibling temp path, then
atomically rename over the destination.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set

from repro.analysis.astutil import call_name
from repro.analysis.registry import Finding, Rule, register

__all__ = ["AtomicFileWrite"]

_SAVEZ_CALLS = frozenset(
    {"np.savez", "np.savez_compressed", "numpy.savez", "numpy.savez_compressed"}
)
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})
#: open() modes that create or truncate — reads never tear a file.
_DURABLE_MODES = ("w", "a", "x")


def _durable_mode(node: ast.Call) -> bool:
    """Whether an ``open``/``.open`` call uses a writing mode."""
    candidates: List[ast.expr] = list(node.args)
    candidates.extend(kw.value for kw in node.keywords if kw.arg == "mode")
    for arg in candidates:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value.startswith(_DURABLE_MODES):
                return True
    return False


def _write_call(node: ast.Call) -> Optional[str]:
    """A short description if ``node`` durably writes a file, else None."""
    callee = call_name(node.func)
    if callee in _SAVEZ_CALLS:
        return f"{callee}() writes the archive in place"
    if isinstance(node.func, ast.Attribute):
        if node.func.attr in _WRITE_METHODS:
            return f".{node.func.attr}() writes the file in place"
        if node.func.attr == "open" and _durable_mode(node):
            return ".open() in a writing mode"
    elif callee == "open" and _durable_mode(node):
        return "open() in a writing mode"
    return None


def _replaces(node: ast.Call) -> bool:
    """Whether ``node`` is the atomic-rename half of the idiom.

    ``os.replace(tmp, path)``, the one-argument ``Path.replace(path)``
    method (``str.replace`` takes two, so the arity disambiguates), or a
    delegation to a helper named after the idiom (``_write_atomic``).
    """
    callee = call_name(node.func)
    if callee in ("os.replace", "os.rename"):
        return True
    if callee is not None and "atomic" in callee.lower():
        return True
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "replace"
        and len(node.args) == 1
        and not node.keywords
    ):
        return True
    return False


@register
class AtomicFileWrite(Rule):
    rule_id = "atomic-file-write"
    family = "persistence"
    summary = "durable file write without the temp + os.replace idiom"
    rationale = (
        "A reader (warm start, bench guard, baseline diff) that opens a "
        "file mid-write sees a torn payload; a writer killed mid-write "
        "leaves one behind forever.  Write the bytes to a sibling temp "
        "path and os.replace() it over the destination — rename is atomic "
        "on POSIX, so the file is always either the old version or the new."
    )

    def check(self, tree: ast.Module, lines: Sequence[str], relpath: str) -> List[Finding]:
        findings: List[Finding] = []
        reported: Set[int] = set()
        scopes: List[ast.AST] = [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scopes.append(tree)
        covered: Set[int] = set()
        for scope in scopes:
            if scope is tree:
                # Module scope: only statements outside every function.
                nodes = [n for n in ast.walk(tree) if id(n) not in covered]
            else:
                nodes = list(ast.walk(scope))
                covered.update(id(n) for n in nodes)
            writes = []
            atomic = False
            for node in nodes:
                if not isinstance(node, ast.Call):
                    continue
                description = _write_call(node)
                if description is not None:
                    writes.append((node, description))
                elif _replaces(node):
                    atomic = True
            if atomic:
                continue
            for node, description in writes:
                if id(node) in reported:
                    continue
                reported.add(id(node))
                findings.append(
                    self.finding(
                        node, relpath, f"{description} without os.replace()"
                    )
                )
        return findings
