"""Tagging + pairing walkthrough (paper Figure 2) with adversarial training.

Trains the BERT+BiLSTM+CRF tagger on the restaurant dataset twice — plain
and with FGSM adversarial training — then tags the paper's example sentence
and shows robustness on a typo-perturbed copy.

    python examples/tagging_demo.py
"""

import numpy as np

from repro.bert import pretrained_encoder
from repro.core import (
    AdversarialConfig,
    HeuristicPairer,
    SequenceTagger,
    TagExtractor,
    TaggerTrainer,
    TaggerTrainingConfig,
    TreePairingHeuristic,
    evaluate_tagger,
)
from repro.data import NoiseConfig, apply_noise, build_tagging_dataset
from repro.text import ChunkParser, PosLexicon, restaurant_lexicon


def train(adversarial: bool) -> SequenceTagger:
    encoder = pretrained_encoder("restaurants")
    tagger = SequenceTagger(encoder, np.random.default_rng(0))
    config = TaggerTrainingConfig(
        epochs=8,
        adversarial=AdversarialConfig(enabled=adversarial, epsilon=0.2, alpha=0.5),
    )
    dataset = build_tagging_dataset("S1", scale=0.15)
    TaggerTrainer(tagger, config).fit(dataset.train)
    result = evaluate_tagger(tagger, dataset.test)
    label = "adversarial" if adversarial else "clean      "
    print(f"  {label} training: test F1 = {result.f1 * 100:.2f}")
    return tagger


def main() -> None:
    print("Training taggers (a minute or two)...")
    clean_tagger = train(adversarial=False)
    adv_tagger = train(adversarial=True)

    # --- Figure 2: token tagging + pairing -------------------------------
    sentence = "the food was really good but the service was a bit slow .".split()
    labels = adv_tagger.predict([sentence])[0]
    print("\nFigure 2 sentence, tagged:")
    print(" ", " ".join(f"{tok}/{lab}" for tok, lab in zip(sentence, labels)))

    parser = ChunkParser(PosLexicon(restaurant_lexicon()))
    extractor = TagExtractor(
        adv_tagger, HeuristicPairer([TreePairingHeuristic(parser, direction="opinions")])
    )
    tags = extractor.extract(sentence)
    print("  subjective tags:", [t.text for t in tags])

    # --- robustness: typos (Section 4.3's motivation) ---------------------
    print("\nRobustness under typos (20 perturbed copies of a test sentence):")
    rng = np.random.default_rng(7)
    noisy_config = NoiseConfig(typo_prob=0.25, drop_final_punct_prob=0.0)
    from repro.data import LabeledSentence

    base = LabeledSentence(
        tokens="the staff is friendly and the pasta is delicious .".split(),
        labels=["O", "B-AS", "O", "B-OP", "O", "O", "B-AS", "O", "B-OP", "O"],
    )
    for name, tagger in (("clean", clean_tagger), ("adversarial", adv_tagger)):
        hits = 0
        for _ in range(20):
            noisy = apply_noise(base, noisy_config, rng)
            predicted = tagger.predict([noisy.tokens])[0]
            hits += int(predicted == base.labels)
        print(f"  {name:<12} exact-label-sequence accuracy: {hits}/20")


if __name__ == "__main__":
    main()
