"""Quickstart: build a world, index subjective tags, answer a subjective query.

Runs in ~30 seconds.  Uses the oracle extractor (gold review annotations) so
no model training is needed — see ``conversational_search.py`` for the full
neural pipeline.

    python examples/quickstart.py
"""

from repro.core import OracleExtractor, Saccs, SaccsConfig, SubjectiveTag
from repro.data import WorldConfig, build_world
from repro.text import ConceptualSimilarity, restaurant_lexicon


def main() -> None:
    # 1. A synthetic restaurant world: entities with latent subjective
    #    quality, plus reviews whose text reflects it.
    world = build_world(WorldConfig.small(num_entities=40, mean_reviews=12))
    entity = world.entities[0]
    print(f"World: {len(world.entities)} restaurants, {world.num_reviews} reviews")
    print(f"Example entity: {entity.name} ({entity.stars} stars)")
    print(f"Example review: {world.reviews[entity.entity_id][0].text!r}\n")

    # 2. SACCS: extract subjective tags from every review and build the
    #    inverted index with degrees of truth (paper Table 1 / Eq. 1).
    similarity = ConceptualSimilarity(restaurant_lexicon())
    saccs = Saccs(world.entities, world.reviews, OracleExtractor(), similarity, SaccsConfig())
    saccs.build_index([SubjectiveTag.from_text(d.name) for d in world.dimensions])
    print("Subjective tag index (snippet, cf. paper Table 1):")
    print(saccs.index.snippet(max_tags=4, max_entities=3), "\n")

    # 3. Answer a subjective query: filter + rank by degrees of truth.
    query = [SubjectiveTag.from_text("delicious food"), SubjectiveTag.from_text("nice staff")]
    print(f"Query: {', '.join(t.text for t in query)}")
    results = saccs.answer_tags(query)
    name_of = {e.entity_id: e.name for e in world.entities}
    for rank, (entity_id, score) in enumerate(results[:5], start=1):
        truth = ", ".join(
            f"{d}={world.true_sat(d, entity_id):.2f}" for d in ("delicious food", "nice staff")
        )
        print(f"  {rank}. {name_of[entity_id]:<22} score={score:.3f}   latent: {truth}")

    # 4. Unknown tags are answered by combining similar index tags and then
    #    adopted at the next indexing round (the adaptive loop of Figure 1).
    unknown = SubjectiveTag.from_text("mouthwatering pasta")
    results = saccs.answer_tags([unknown])
    print(f"\nUnknown tag {unknown.text!r} answered via similar index tags:")
    for entity_id, score in results[:3]:
        print(f"  {name_of[entity_id]:<22} score={score:.3f}")
    added = saccs.run_indexing_round()
    print(f"Indexing round adopted: {[t.text for t in added]}")


if __name__ == "__main__":
    main()
