"""Data programming for pairing (Figure 6) + a Figure-5 attention heatmap.

Shows the whole weak-supervision pipeline: labeling functions vote, the
label models aggregate, the discriminative classifier trains on the weak
labels — and prints an ASCII rendering of the attention head the pairing
heuristic reads.

    python examples/weak_supervision_demo.py
"""

import numpy as np

from repro.bert import pretrained_encoder
from repro.core import (
    PairingClassifier,
    PairingPipeline,
    SequenceTagger,
    TaggerTrainer,
    TaggerTrainingConfig,
    classification_report,
    default_labeling_functions,
    instances_from_examples,
    select_attention_heads,
)
from repro.data import build_pairing_dataset, build_tagging_dataset
from repro.text import ChunkParser, PosLexicon, restaurant_lexicon
from repro.weak import analyse_labeling_functions, apply_labeling_functions


def ascii_heatmap(tokens, attention) -> str:
    """Figure-5-style rendering: rows attend over columns."""
    shades = " .:-=+*#%@"
    width = max(len(t) for t in tokens)
    lines = ["  " + " ".join(f"{t[:6]:>6}" for t in tokens)]
    for token, row in zip(tokens, attention):
        cells = " ".join(f"{shades[min(int(v * 9 / max(row.max(), 1e-9)), 9)] * 6:>6}" for v in row)
        lines.append(f"{token[:width]:>{width}} {cells}")
    return "\n".join(lines)


def main() -> None:
    print("Preparing encoder + tagger (fine-tuning organises the attention heads)...")
    encoder = pretrained_encoder("restaurants")
    tagger = SequenceTagger(encoder, np.random.default_rng(0))
    TaggerTrainer(tagger, TaggerTrainingConfig(epochs=8)).fit(
        build_tagging_dataset("S1", scale=0.15).train
    )

    train = build_pairing_dataset("hotels", num_sentences=250, seed=5)
    test = build_pairing_dataset("restaurants", num_sentences=120, seed=7)
    train_instances = instances_from_examples(train.examples)
    test_instances = instances_from_examples(test.examples)
    test_gold = [e.label for e in test.examples]

    # Head selection (automates the paper's qualitative analysis).
    heads = select_attention_heads(
        encoder, train_instances[:120], [e.label for e in train.examples][:120], top_k=5
    )
    print("Selected attention heads (layer, head, dev accuracy):")
    for layer, head, acc in heads:
        print(f"  layer {layer} head {head}: {acc:.3f}")

    # Figure 5: the best head on the paper's example sentence.
    sentence = "the food is delicious and the staff is friendly .".split()
    maps = encoder.attention(sentence)
    best_layer, best_head, _ = heads[0]
    print(f"\nAttention head {best_layer}:{best_head} (cf. paper Figure 5):")
    print(ascii_heatmap(sentence, maps[best_layer, best_head]))

    # The seven labeling functions and their diagnostics.
    parser = ChunkParser(PosLexicon(restaurant_lexicon()))
    lfs = default_labeling_functions(encoder, parser, [(l, h) for l, h, _ in heads])
    votes = apply_labeling_functions(lfs, test_instances)
    print("\nLabeling-function diagnostics on the test set:")
    for summary in analyse_labeling_functions(votes, [lf.name for lf in lfs], gold=np.array(test_gold)):
        print(" ", summary.as_row())

    # End-to-end pipeline: weak labels -> discriminative classifier.
    pipeline = PairingPipeline(
        lfs, label_model="probabilistic", classifier=PairingClassifier(encoder, seed=1)
    )
    pipeline.fit(train_instances, epochs=25)
    report = classification_report(test_gold, pipeline.predict(test_instances))
    print("\n" + report.row("Discriminative model"))


if __name__ == "__main__":
    main()
