"""Section-7 extensions: fake-review defence and user-profile re-ranking.

The paper's future-work list asks for (1) robustness against paid/fake
reviews and (2) search behaviour that adapts to user profiles.  This example
exercises both implementations:

* inject promotion/attack campaigns into a world, show how the index's
  degrees of truth get corrupted, then recover them with the
  ``FakeReviewFilter``;
* simulate a user who repeatedly favours romantic restaurants and show the
  personalised ranking drifting toward their taste.

    python examples/fraud_and_profiles.py
"""

import numpy as np

from repro.core import (
    FakeReviewFilter,
    OracleExtractor,
    Saccs,
    SaccsConfig,
    SubjectiveTag,
    UserProfile,
    personalized_rank,
)
from repro.data import FraudConfig, WorldConfig, build_world, inject_fraud
from repro.text import ConceptualSimilarity, restaurant_lexicon


def degree_rank_quality(saccs, world, dimension):
    """Spearman-ish check: correlation of degrees with latent quality."""
    tag = SubjectiveTag.from_text(dimension)
    mapping = saccs.index.lookup(tag)
    if len(mapping) < 3:
        return 0.0
    degrees = np.array([mapping[e] for e in mapping])
    latent = np.array([world.entity_index[e].quality_of(dimension) for e in mapping])
    return float(np.corrcoef(degrees, latent)[0, 1])


def main() -> None:
    similarity = ConceptualSimilarity(restaurant_lexicon())
    dims = ["delicious food", "nice staff", "romantic ambiance", "fair prices"]

    # ---------------- fake reviews -----------------------------------------
    print("== Fake-review robustness ==")
    world = build_world(WorldConfig.small(num_entities=40, mean_reviews=12))
    clean = Saccs(world.entities, world.reviews, OracleExtractor(), similarity, SaccsConfig())
    clean.build_index([SubjectiveTag.from_text(d) for d in dims])
    baseline = np.mean([degree_rank_quality(clean, world, d) for d in dims])
    print(f"degree-quality correlation, clean world:          {baseline:.3f}")

    campaigns = inject_fraud(world, FraudConfig(promotion_fraction=0.25, attack_fraction=0.15))
    print(f"injected {len(campaigns)} campaigns "
          f"({sum(len(c.review_ids) for c in campaigns)} fake reviews)")

    attacked = Saccs(world.entities, world.reviews, OracleExtractor(), similarity, SaccsConfig())
    attacked.build_index([SubjectiveTag.from_text(d) for d in dims])
    corrupted = np.mean([degree_rank_quality(attacked, world, d) for d in dims])
    print(f"degree-quality correlation, under attack:         {corrupted:.3f}")

    defended = Saccs(
        world.entities, world.reviews, OracleExtractor(), similarity, SaccsConfig(),
        review_filter=FakeReviewFilter(),
    )
    defended.build_index([SubjectiveTag.from_text(d) for d in dims])
    recovered = np.mean([degree_rank_quality(defended, world, d) for d in dims])
    print(f"degree-quality correlation, with FakeReviewFilter: {recovered:.3f}")

    fltr = FakeReviewFilter()
    flagged, fake_total, organic_flagged, organic_total = 0, 0, 0, 0
    fake_ids = {rid for c in campaigns for rid in c.review_ids}
    for entity in world.entities:
        reviews = world.reviews[entity.entity_id]
        for review_id in fltr.flagged(reviews):
            if review_id in fake_ids:
                flagged += 1
            else:
                organic_flagged += 1
        organic_total += sum(1 for r in reviews if r.review_id not in fake_ids)
    fake_total = len(fake_ids)
    print(f"filter recall on fakes: {flagged}/{fake_total}; "
          f"false positives: {organic_flagged}/{organic_total}")

    # ---------------- user profiles ----------------------------------------
    print("\n== User-profile personalisation ==")
    world2 = build_world(WorldConfig.small(num_entities=40, mean_reviews=12))
    saccs = Saccs(world2.entities, world2.reviews, OracleExtractor(), similarity, SaccsConfig())
    saccs.build_index([SubjectiveTag.from_text(d) for d in dims])
    profile = UserProfile("romantic-diner")
    # The user keeps asking about (and choosing by) ambiance.
    for _ in range(6):
        profile.record_query(
            [SubjectiveTag.from_text("romantic ambiance")], lambda t: "romantic ambiance"
        )
    query = ["romantic ambiance", "fair prices"]
    tag_sets = [saccs.index.lookup(SubjectiveTag.from_text(d)) for d in query]
    api = [e.entity_id for e in world2.entities]
    generic = personalized_rank(tag_sets, query, UserProfile("fresh"), api, top_k=5)
    personal = personalized_rank(tag_sets, query, profile, api, top_k=5)
    name_of = {e.entity_id: e.name for e in world2.entities}

    def describe(ranked, label):
        print(f"{label}:")
        for entity_id, score in ranked:
            entity = world2.entity_index[entity_id]
            print(
                f"  {name_of[entity_id]:<24} score={score:.3f} "
                f"romantic={entity.quality_of('romantic ambiance'):.2f} "
                f"prices={entity.quality_of('fair prices'):.2f}"
            )

    describe(generic, "generic ranking")
    describe(personal, f"personalised (ambiance weight={profile.weight_of('romantic ambiance'):.2f})")
    mean_romantic = lambda ranked: np.mean(
        [world2.entity_index[e].quality_of("romantic ambiance") for e, _ in ranked]
    )
    print(
        f"mean romantic quality in top-5: generic={mean_romantic(generic):.3f} "
        f"personalised={mean_romantic(personal):.3f}"
    )


if __name__ == "__main__":
    main()
