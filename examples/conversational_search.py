"""Full conversational pipeline: utterance → intent/slots → SACCS → ranked results.

Everything neural: the tagger is trained from scratch on the restaurant
dataset, the extractor runs over every review, and the user talks to the
system in natural language (paper Section 3's running example).

    python examples/conversational_search.py
"""

import numpy as np

from repro.bert import pretrained_encoder
from repro.core import (
    HeuristicPairer,
    Saccs,
    SaccsConfig,
    SequenceTagger,
    SubjectiveTag,
    TagExtractor,
    TaggerTrainer,
    TaggerTrainingConfig,
    TreePairingHeuristic,
)
from repro.data import WorldConfig, build_world, build_tagging_dataset
from repro.text import ChunkParser, ConceptualSimilarity, PosLexicon, restaurant_lexicon


def main() -> None:
    print("Building world and training the tagger (a minute or two)...")
    world = build_world(WorldConfig.small(num_entities=40, mean_reviews=12))
    encoder = pretrained_encoder("restaurants")
    tagger = SequenceTagger(encoder, np.random.default_rng(0))
    TaggerTrainer(tagger, TaggerTrainingConfig(epochs=8)).fit(
        build_tagging_dataset("S1", scale=0.15).train
    )
    parser = ChunkParser(PosLexicon(restaurant_lexicon()))
    extractor = TagExtractor(
        tagger, HeuristicPairer([TreePairingHeuristic(parser, direction="opinions")])
    )

    similarity = ConceptualSimilarity(restaurant_lexicon())
    saccs = Saccs(world.entities, world.reviews, extractor, similarity, SaccsConfig())
    print("Extracting subjective tags from all reviews and indexing...")
    saccs.build_index([SubjectiveTag.from_text(d.name) for d in world.dimensions])

    name_of = {e.entity_id: e.name for e in world.entities}
    utterances = [
        "I want an italian restaurant in montreal that serves delicious food and has a nice staff",
        "find me a restaurant with a quiet atmosphere",
        "I am looking for a restaurant with fair prices and quick service",
    ]
    for utterance in utterances:
        print(f"\nUser: {utterance!r}")
        parsed = saccs.dialog.recognizer.parse(utterance)
        print(f"  intent={parsed.intent} slots={parsed.slots}")
        extracted = extractor.extract(parsed.tokens)
        print(f"  subjective tags understood: {[t.text for t in extracted]}")
        results = saccs.answer(utterance)
        for rank, (entity_id, score) in enumerate(results[:3], start=1):
            print(f"  {rank}. {name_of[entity_id]:<22} score={score:.3f}")

    if saccs.user_tag_history:
        print(f"\nTag history pending indexing: {[t.text for t in saccs.user_tag_history]}")
        saccs.run_indexing_round()
        print(f"Index now holds {len(saccs.index)} tags (adaptive loop of Figure 1).")

    # ----- multi-turn refinement (ConversationSession) ---------------------
    from repro.core import ConversationSession

    print("\nMulti-turn session:")
    session = ConversationSession(saccs, top_k=3)
    for utterance in (
        "I want an italian restaurant in montreal with delicious food",
        "it should also have fair prices",
        "actually the prices doesn't matter",
    ):
        turn = session.say(utterance)
        print(f"  user: {utterance!r}")
        print(f"    state -> {session.state_summary()}")
        if turn.results:
            top_id, score = turn.results[0]
            print(f"    top result: {name_of.get(top_id, top_id)} ({score:.3f})")


if __name__ == "__main__":
    main()
